//! RoCE v2 wire format: Ethernet / IPv4 / UDP / BTH / RETH / AETH / ICRC.
//!
//! Every packet in the simulation is a real byte string in this format.
//! This matters for the reproduction: the P4CE switch program must parse
//! these bytes, rewrite addressing and RDMA fields, and *recompute the
//! integrity checksum* — the same work the paper's P4 deparser does.
//!
//! Layout (fields the paper's Table I manipulates are marked ★):
//!
//! ```text
//! Ethernet  dst(6) src(6) ethertype(2)=0x0800
//! IPv4      ver/ihl(1) dscp(1) totlen(2) id(2) frag(2) ttl(1) proto(1)=17
//!           checksum(2) src(4)★ dst(4)★
//! UDP       sport(2) dport(2)=4791 len(2) cksum(2)
//! BTH       opcode(1)★ flags(1,bit7=ack_req) pkey(2) resv(1) destqp(3)★
//!           resv(1) psn(3)★
//! [RETH]    va(8)★ rkey(4)★ dmalen(4)        (write-first/only, read-req)
//! [AETH]    syndrome(1)★ msn(3)              (ack, read-response)
//! payload   …
//! ICRC      crc32(4) over the pseudo-header + transport headers + payload
//! ```
//!
//! # The zero-copy fast path
//!
//! The ICRC is a real CRC-32 (IEEE, reflected), which is *linear* over
//! GF(2): the checksum of `headers ∥ payload` equals the header CRC
//! shifted past the payload length, XORed with the payload CRC
//! ([`crc32_combine`]). Because of that, rewriting header fields never
//! requires re-hashing the payload: [`patch_frame`] applies a
//! [`RewriteSet`] — exactly the fields the paper's deparser rewrites
//! (addresses, UDP source port, QPN, PSN, VA, `R_key`, AETH) — by
//! mutating the affected bytes in place, updating the IPv4 checksum
//! incrementally (RFC 1624), and folding the *header-CRC delta* into the
//! existing ICRC. [`PacketTemplate`] caches the parse offsets and the
//! payload-length shift operator so a multicast scatter serializes the
//! packet once and stamps per-replica deltas at O(header) cost per copy.
//!
//! The AETH syndrome uses a simplified-but-faithful encoding: bits 7–5
//! select ACK (`000`), RNR NAK (`001`) or NAK (`011`); for ACKs the low five
//! bits carry the *credit count* (how many further requests the responder
//! can buffer — the field P4CE's gather logic must aggregate with a
//! minimum), for NAKs they carry the error code.

use bytes::{BufMut, Bytes, BytesMut};
use netsim::Frame;
use std::error::Error;
use std::fmt;
use std::net::Ipv4Addr;

use crate::opcode::Opcode;
use crate::types::{MacAddr, Psn, Qpn, RKey, ROCE_UDP_PORT};

/// Ethernet header length.
pub const ETH_LEN: usize = 14;
/// IPv4 header length (no options).
pub const IPV4_LEN: usize = 20;
/// UDP header length.
pub const UDP_LEN: usize = 8;
/// Base transport header length.
pub const BTH_LEN: usize = 12;
/// RDMA extended transport header length.
pub const RETH_LEN: usize = 16;
/// ACK extended transport header length.
pub const AETH_LEN: usize = 4;
/// Invariant CRC length.
pub const ICRC_LEN: usize = 4;

/// Header bytes of a packet with neither RETH nor AETH, including ICRC.
pub const BASE_OVERHEAD: usize = ETH_LEN + IPV4_LEN + UDP_LEN + BTH_LEN + ICRC_LEN;

/// The maximum credit count representable in the 5-bit AETH field.
pub const MAX_CREDITS: u8 = 31;

/// Negative-acknowledge codes (AETH syndrome low bits when NAK).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NakCode {
    /// PSN sequence error: the responder saw a gap.
    PsnSequenceError,
    /// The request was malformed for this queue pair.
    InvalidRequest,
    /// R_key / bounds / permission violation.
    RemoteAccessError,
    /// The responder failed internally.
    RemoteOperationalError,
}

impl NakCode {
    fn to_bits(self) -> u8 {
        match self {
            NakCode::PsnSequenceError => 0,
            NakCode::InvalidRequest => 1,
            NakCode::RemoteAccessError => 2,
            NakCode::RemoteOperationalError => 3,
        }
    }

    fn from_bits(v: u8) -> Option<NakCode> {
        Some(match v {
            0 => NakCode::PsnSequenceError,
            1 => NakCode::InvalidRequest,
            2 => NakCode::RemoteAccessError,
            3 => NakCode::RemoteOperationalError,
            _ => return None,
        })
    }
}

impl fmt::Display for NakCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NakCode::PsnSequenceError => "psn sequence error",
            NakCode::InvalidRequest => "invalid request",
            NakCode::RemoteAccessError => "remote access error",
            NakCode::RemoteOperationalError => "remote operational error",
        };
        f.write_str(s)
    }
}

/// The decoded AETH: a positive ACK carrying flow-control credits, or a NAK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AethKind {
    /// Positive acknowledgement; `credits` is the responder's current
    /// credit count (§II-A, "Congestion").
    Ack {
        /// How many further requests the responder can accept right now.
        credits: u8,
    },
    /// Negative acknowledgement with an error code.
    Nak(NakCode),
}

/// The ACK extended transport header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Aeth {
    /// ACK-or-NAK plus its argument.
    pub kind: AethKind,
    /// Message sequence number (24-bit, informational in this model).
    pub msn: u32,
}

impl Aeth {
    fn syndrome(&self) -> u8 {
        match self.kind {
            AethKind::Ack { credits } => credits.min(MAX_CREDITS),
            AethKind::Nak(code) => (0b011 << 5) | code.to_bits(),
        }
    }

    fn from_syndrome(syndrome: u8, msn: u32) -> Result<Aeth, ParseError> {
        let kind = match syndrome >> 5 {
            0b000 => AethKind::Ack {
                credits: syndrome & 0x1f,
            },
            0b011 => AethKind::Nak(
                NakCode::from_bits(syndrome & 0x1f).ok_or(ParseError::BadAethSyndrome(syndrome))?,
            ),
            _ => return Err(ParseError::BadAethSyndrome(syndrome)),
        };
        Ok(Aeth {
            kind,
            msn: msn & 0x00ff_ffff,
        })
    }
}

/// The RDMA extended transport header carried by write-first/write-only and
/// read-request packets: where the one-sided operation lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reth {
    /// Target virtual address in the remote region.
    pub va: u64,
    /// Authorization key for the remote region.
    pub rkey: RKey,
    /// Total message length in bytes (across all packets of the message).
    pub dma_len: u32,
}

/// The base transport header present in every RoCE packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bth {
    /// What this packet is (Table I, "Operation code").
    pub opcode: Opcode,
    /// Destination queue pair.
    pub dest_qp: Qpn,
    /// Packet sequence number.
    pub psn: Psn,
    /// Request an acknowledgement for this packet.
    pub ack_req: bool,
}

/// A fully-decoded RoCE v2 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RocePacket {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// UDP source port (RoCE uses it for ECMP entropy; we keep it stable
    /// per queue pair).
    pub udp_src_port: u16,
    /// Base transport header.
    pub bth: Bth,
    /// Present on write-first/write-only/read-request packets.
    pub reth: Option<Reth>,
    /// Present on ACK and read-response packets.
    pub aeth: Option<Aeth>,
    /// Message payload bytes carried by this packet.
    pub payload: Bytes,
}

impl RocePacket {
    /// Serialized length on the wire (Ethernet frame, before layer-1
    /// overhead).
    pub fn wire_len(&self) -> usize {
        BASE_OVERHEAD
            + if self.reth.is_some() { RETH_LEN } else { 0 }
            + if self.aeth.is_some() { AETH_LEN } else { 0 }
            + self.payload.len()
    }

    /// Serializes the packet to an Ethernet frame, computing the IPv4
    /// checksum and the ICRC.
    ///
    /// # Panics
    ///
    /// Panics if the RETH/AETH presence contradicts the opcode (a
    /// construction bug, not a runtime condition).
    pub fn to_frame(&self) -> Frame {
        self.serialize(None)
    }

    /// Like [`RocePacket::to_frame`], but sources the payload term of the
    /// ICRC from `cache`: when the same payload [`Bytes`] (same allocation
    /// and range) was serialized before — a retransmission, or one message
    /// fanned out to several queue pairs — the payload is not re-hashed;
    /// its cached CRC is stitched to the freshly-hashed header CRC with
    /// the GF(2) shift operator. Output is bit-identical to `to_frame`.
    pub fn to_frame_cached(&self, cache: &mut PayloadCrcCache) -> Frame {
        if self.payload.len() < PAYLOAD_CRC_CACHE_MIN {
            return self.serialize(None);
        }
        let pcrc = cache.payload_crc(&self.payload);
        self.serialize(Some(pcrc))
    }

    /// Serialization body shared by [`RocePacket::to_frame`] and
    /// [`RocePacket::to_frame_cached`]; `payload_crc`, when given, is
    /// `crc32_raw(0, payload)` and replaces hashing the payload bytes.
    fn serialize(&self, payload_crc: Option<u32>) -> Frame {
        assert_eq!(
            self.reth.is_some(),
            self.bth.opcode.carries_reth(),
            "RETH presence must match opcode {}",
            self.bth.opcode
        );
        assert_eq!(
            self.aeth.is_some(),
            self.bth.opcode.carries_aeth(),
            "AETH presence must match opcode {}",
            self.bth.opcode
        );
        let total = self.wire_len();
        let mut buf = BytesMut::with_capacity(total);

        // Ethernet
        buf.put_slice(&self.dst_mac.0);
        buf.put_slice(&self.src_mac.0);
        buf.put_u16(0x0800);

        // IPv4
        let ip_total = (total - ETH_LEN) as u16;
        let ip_start = buf.len();
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(ip_total);
        buf.put_u16(0); // identification
        buf.put_u16(0x4000); // don't fragment
        buf.put_u8(64); // TTL
        buf.put_u8(17); // UDP
        buf.put_u16(0); // checksum placeholder
        buf.put_slice(&self.src_ip.octets());
        buf.put_slice(&self.dst_ip.octets());
        let cksum = ipv4_checksum(&buf[ip_start..ip_start + IPV4_LEN]);
        buf[ip_start + 10..ip_start + 12].copy_from_slice(&cksum.to_be_bytes());

        // UDP
        buf.put_u16(self.udp_src_port);
        buf.put_u16(ROCE_UDP_PORT);
        buf.put_u16((total - ETH_LEN - IPV4_LEN) as u16);
        buf.put_u16(0); // UDP checksum unused with RoCE

        // BTH
        let transport_start = buf.len();
        buf.put_u8(self.bth.opcode.to_wire());
        buf.put_u8(if self.bth.ack_req { 0x80 } else { 0 });
        buf.put_u16(0xffff); // pkey: default partition
        buf.put_u32(self.bth.dest_qp.masked()); // 8 reserved bits + 24-bit QPN
        buf.put_u32(self.bth.psn.value()); // 8 reserved bits + 24-bit PSN

        // RETH / AETH
        if let Some(reth) = &self.reth {
            buf.put_u64(reth.va);
            buf.put_u32(reth.rkey.0);
            buf.put_u32(reth.dma_len);
        }
        if let Some(aeth) = &self.aeth {
            buf.put_u8(aeth.syndrome());
            buf.put_slice(&aeth.msn.to_be_bytes()[1..4]);
        }

        buf.put_slice(&self.payload);

        // ICRC over pseudo-header + transport headers + payload. Rewriting
        // any covered field (addresses, QPN, PSN, VA, R_key, syndrome)
        // invalidates it — the switch must recompute, as on real hardware.
        let icrc = match payload_crc {
            Some(pcrc) => {
                // Headers hashed fresh, the payload term supplied: stitch
                // the two with the shift operator (CRC linearity; see
                // `crc32_two_lane_raw` for the identity).
                let payload_start = buf.len() - self.payload.len();
                let h = crc32_raw(
                    CRC32_INIT,
                    &icrc_pseudo(self.src_ip, self.dst_ip, self.udp_src_port),
                );
                let h = crc32_raw(h, &buf[transport_start..payload_start]);
                !(crc32_shift(h, self.payload.len()) ^ pcrc)
            }
            None => icrc_compute(
                self.src_ip,
                self.dst_ip,
                self.udp_src_port,
                &buf[transport_start..],
            ),
        };
        buf.put_u32(icrc);

        debug_assert_eq!(buf.len(), total);
        // Both checksums were computed over these exact bytes just above:
        // mark the frame so receivers can skip re-deriving them.
        Frame::new_verified(buf.freeze())
    }

    /// Parses an Ethernet frame as a RoCE v2 packet, verifying the IPv4
    /// checksum and the ICRC.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first malformed layer. A
    /// frame that is well-formed IPv4/UDP but not addressed to the RoCE
    /// port yields [`ParseError::NotRoce`].
    pub fn parse(frame: &Frame) -> Result<RocePacket, ParseError> {
        // Validation lives in parse_view; materialization in to_packet.
        // Building parse on the view keeps the two in agreement by
        // construction: they accept exactly the same frames.
        Ok(RocePacket::parse_view(frame)?.to_packet())
    }

    /// Validates a frame as RoCE v2 and returns a borrowed header view —
    /// the same acceptance set as [`RocePacket::parse`] (structure,
    /// opcode, AETH syndrome, and, on unverified frames, IPv4 checksum
    /// and ICRC), but no owned struct is materialized: fields are read
    /// on demand at fixed offsets, and the payload only becomes a
    /// (zero-copy) [`Bytes`] slice if asked for. This is the RX dispatch
    /// fast path: most packets need two or three header fields, not a
    /// twelve-field decode.
    ///
    /// # Errors
    ///
    /// Same as [`RocePacket::parse`], in the same order.
    pub fn parse_view(frame: &Frame) -> Result<RoceView<'_>, ParseError> {
        RocePacket::parse_view_inner(frame, None)
    }

    /// [`RocePacket::parse_view`] with the ICRC payload term sourced from
    /// `cache` on unverified frames: when the same payload bytes were
    /// hashed before, only the headers are re-hashed and the terms are
    /// stitched with the GF(2) shift operator. Accepts and rejects
    /// exactly the same frames as `parse_view`.
    ///
    /// # Errors
    ///
    /// Same as [`RocePacket::parse`].
    pub fn parse_view_cached<'f>(
        frame: &'f Frame,
        cache: &mut PayloadCrcCache,
    ) -> Result<RoceView<'f>, ParseError> {
        RocePacket::parse_view_inner(frame, Some(cache))
    }

    fn parse_view_inner<'f>(
        frame: &'f Frame,
        cache: Option<&mut PayloadCrcCache>,
    ) -> Result<RoceView<'f>, ParseError> {
        let b = &frame.data;
        if b.len() < BASE_OVERHEAD {
            return Err(ParseError::TooShort);
        }
        let ethertype = u16::from_be_bytes([b[12], b[13]]);
        if ethertype != 0x0800 {
            return Err(ParseError::NotIpv4);
        }
        let ip = &b[ETH_LEN..];
        if ip[0] != 0x45 {
            return Err(ParseError::NotIpv4);
        }
        if ip[9] != 17 {
            return Err(ParseError::NotUdp);
        }
        if !frame.is_verified() && ipv4_checksum(&ip[..IPV4_LEN]) != 0 {
            return Err(ParseError::BadIpChecksum);
        }
        let udp = &b[ETH_LEN + IPV4_LEN..];
        let udp_dst_port = u16::from_be_bytes([udp[2], udp[3]]);
        if udp_dst_port != ROCE_UDP_PORT {
            return Err(ParseError::NotRoce);
        }

        let opcode_raw = b[TRANSPORT_OFF];
        let opcode = Opcode::from_wire(opcode_raw).ok_or(ParseError::BadOpcode(opcode_raw))?;

        let mut off = TRANSPORT_OFF + BTH_LEN;
        if opcode.carries_reth() {
            if b.len() < off + RETH_LEN + ICRC_LEN {
                return Err(ParseError::TooShort);
            }
            off += RETH_LEN;
        }
        // The AETH is decoded eagerly: its syndrome encoding is part of
        // the acceptance set (`BadAethSyndrome`), so the view must check
        // it up front to reject exactly what `parse` rejects.
        let aeth = if opcode.carries_aeth() {
            if b.len() < off + AETH_LEN + ICRC_LEN {
                return Err(ParseError::TooShort);
            }
            let syndrome = b[off];
            let msn = u32::from_be_bytes([0, b[off + 1], b[off + 2], b[off + 3]]);
            off += AETH_LEN;
            Some(Aeth::from_syndrome(syndrome, msn)?)
        } else {
            None
        };

        if b.len() < off + ICRC_LEN {
            return Err(ParseError::TooShort);
        }
        let view = RoceView {
            frame,
            payload_off: off,
            opcode,
            aeth,
        };
        // Frames whose checksums were stamped by the serializer itself
        // carry a verification hint; recomputing the ICRC over unmodified
        // bytes would reproduce the stored value by definition, so only
        // unverified frames (raw test vectors, fault-corrupted copies) pay
        // for the full recomputation.
        if !frame.is_verified() {
            let got_icrc =
                u32::from_be_bytes(b[b.len() - ICRC_LEN..].try_into().expect("slice len"));
            let h = crc32_raw(
                CRC32_INIT,
                &icrc_pseudo(view.src_ip(), view.dst_ip(), view.udp_src_port()),
            );
            let h = crc32_raw(h, &b[TRANSPORT_OFF..off]);
            let payload_len = b.len() - off - ICRC_LEN;
            let pcrc = match cache {
                Some(cache) if payload_len >= PAYLOAD_CRC_CACHE_MIN => {
                    cache.payload_crc(&view.payload())
                }
                _ => crc32_raw(0, &b[off..b.len() - ICRC_LEN]),
            };
            let want_icrc = !(crc32_shift(h, payload_len) ^ pcrc);
            if got_icrc != want_icrc {
                return Err(ParseError::BadIcrc);
            }
        }
        Ok(view)
    }

    /// Parses a frame and keeps the original bytes alongside the parse as
    /// a [`PacketTemplate`], so downstream header rewrites can be stamped
    /// onto the already-serialized bytes instead of re-serializing.
    ///
    /// # Errors
    ///
    /// Same as [`RocePacket::parse`].
    pub fn parse_with_template(frame: &Frame) -> Result<PacketTemplate, ParseError> {
        let pkt = RocePacket::parse(frame)?;
        let payload_off = frame.data.len() - pkt.payload.len() - ICRC_LEN;
        Ok(PacketTemplate {
            frame: frame.clone(),
            pkt,
            payload_off,
            header_crc: header_region_crc(&frame.data, payload_off),
        })
    }
}

/// A validated, borrowed view of a serialized RoCE v2 frame: every field
/// [`RocePacket`] carries, readable at its fixed wire offset without
/// materializing the owned struct. Produced by
/// [`RocePacket::parse_view`]; a view existing means the frame passed the
/// full acceptance checks (including checksums where required), so field
/// reads cannot fail.
#[derive(Debug, Clone, Copy)]
pub struct RoceView<'a> {
    frame: &'a Frame,
    payload_off: usize,
    opcode: Opcode,
    aeth: Option<Aeth>,
}

impl<'a> RoceView<'a> {
    /// The frame the view borrows.
    pub fn frame(&self) -> &'a Frame {
        self.frame
    }

    /// Source MAC.
    pub fn src_mac(&self) -> MacAddr {
        MacAddr(self.frame.data[6..12].try_into().expect("slice len"))
    }

    /// Destination MAC.
    pub fn dst_mac(&self) -> MacAddr {
        MacAddr(self.frame.data[0..6].try_into().expect("slice len"))
    }

    /// Source IPv4 address.
    pub fn src_ip(&self) -> Ipv4Addr {
        let b = &self.frame.data;
        Ipv4Addr::new(
            b[IP_SRC_OFF],
            b[IP_SRC_OFF + 1],
            b[IP_SRC_OFF + 2],
            b[IP_SRC_OFF + 3],
        )
    }

    /// Destination IPv4 address.
    pub fn dst_ip(&self) -> Ipv4Addr {
        let b = &self.frame.data;
        Ipv4Addr::new(
            b[IP_DST_OFF],
            b[IP_DST_OFF + 1],
            b[IP_DST_OFF + 2],
            b[IP_DST_OFF + 3],
        )
    }

    /// UDP source port.
    pub fn udp_src_port(&self) -> u16 {
        let b = &self.frame.data;
        u16::from_be_bytes([b[UDP_SPORT_OFF], b[UDP_SPORT_OFF + 1]])
    }

    /// BTH opcode.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// BTH acknowledgement-request flag.
    pub fn ack_req(&self) -> bool {
        self.frame.data[TRANSPORT_OFF + 1] & 0x80 != 0
    }

    /// BTH destination queue pair.
    pub fn dest_qp(&self) -> Qpn {
        let b = &self.frame.data;
        Qpn(u32::from_be_bytes([
            0,
            b[BTH_QPN_OFF + 1],
            b[BTH_QPN_OFF + 2],
            b[BTH_QPN_OFF + 3],
        ]))
    }

    /// BTH packet sequence number.
    pub fn psn(&self) -> Psn {
        let b = &self.frame.data;
        Psn::new(u32::from_be_bytes([
            0,
            b[BTH_PSN_OFF + 1],
            b[BTH_PSN_OFF + 2],
            b[BTH_PSN_OFF + 3],
        ]))
    }

    /// The RETH, decoded on demand (present iff the opcode carries one).
    pub fn reth(&self) -> Option<Reth> {
        if !self.opcode.carries_reth() {
            return None;
        }
        let b = &self.frame.data;
        let va = u64::from_be_bytes(b[EXT_OFF..EXT_OFF + 8].try_into().expect("slice len"));
        let rkey = RKey(u32::from_be_bytes(
            b[EXT_OFF + 8..EXT_OFF + 12].try_into().expect("slice len"),
        ));
        let dma_len =
            u32::from_be_bytes(b[EXT_OFF + 12..EXT_OFF + 16].try_into().expect("slice len"));
        Some(Reth { va, rkey, dma_len })
    }

    /// The AETH (present iff the opcode carries one; validated at parse).
    pub fn aeth(&self) -> Option<Aeth> {
        self.aeth
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        self.frame.data.len() - self.payload_off - ICRC_LEN
    }

    /// The payload as a zero-copy slice of the frame bytes.
    pub fn payload(&self) -> Bytes {
        self.frame
            .data
            .slice(self.payload_off..self.frame.data.len() - ICRC_LEN)
    }

    /// Materializes the owned packet — identical to what
    /// [`RocePacket::parse`] would have returned for this frame.
    pub fn to_packet(&self) -> RocePacket {
        RocePacket {
            src_mac: self.src_mac(),
            dst_mac: self.dst_mac(),
            src_ip: self.src_ip(),
            dst_ip: self.dst_ip(),
            udp_src_port: self.udp_src_port(),
            bth: Bth {
                opcode: self.opcode,
                dest_qp: self.dest_qp(),
                psn: self.psn(),
                ack_req: self.ack_req(),
            },
            reth: self.reth(),
            aeth: self.aeth,
            payload: self.payload(),
        }
    }

    /// Builds a [`PacketTemplate`] from the view without re-validating:
    /// equivalent to [`RocePacket::parse_with_template`] on the same
    /// frame, minus the second checksum pass.
    pub fn to_template(&self) -> PacketTemplate {
        PacketTemplate {
            frame: self.frame.clone(),
            pkt: self.to_packet(),
            payload_off: self.payload_off,
            header_crc: header_region_crc(&self.frame.data, self.payload_off),
        }
    }
}

// Fixed byte offsets inside a serialized RoCE v2 frame (no IP options,
// RETH and AETH are mutually exclusive so both start right after BTH).
const IP_OFF: usize = ETH_LEN;
const IP_CKSUM_OFF: usize = IP_OFF + 10;
const IP_SRC_OFF: usize = IP_OFF + 12;
const IP_DST_OFF: usize = IP_OFF + 16;
const UDP_SPORT_OFF: usize = ETH_LEN + IPV4_LEN;
const TRANSPORT_OFF: usize = ETH_LEN + IPV4_LEN + UDP_LEN;
const BTH_QPN_OFF: usize = TRANSPORT_OFF + 4;
const BTH_PSN_OFF: usize = TRANSPORT_OFF + 8;
const EXT_OFF: usize = TRANSPORT_OFF + BTH_LEN;

/// The header fields an in-flight rewrite may change without
/// re-serializing the packet — exactly the set the paper's deparser
/// rewrites per replica (§IV-A, Table I): addressing, UDP entropy,
/// destination QP, PSN, the RETH virtual address and `R_key`, and the
/// AETH of a gathered ACK.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteSet {
    /// New source MAC.
    pub src_mac: Option<MacAddr>,
    /// New destination MAC.
    pub dst_mac: Option<MacAddr>,
    /// New source IPv4 address.
    pub src_ip: Option<Ipv4Addr>,
    /// New destination IPv4 address.
    pub dst_ip: Option<Ipv4Addr>,
    /// New UDP source port.
    pub udp_src_port: Option<u16>,
    /// New destination queue pair.
    pub dest_qp: Option<Qpn>,
    /// New packet sequence number.
    pub psn: Option<Psn>,
    /// New RETH virtual address (requires a RETH-carrying opcode).
    pub va: Option<u64>,
    /// New RETH `R_key` (requires a RETH-carrying opcode).
    pub rkey: Option<RKey>,
    /// New AETH contents (requires an AETH-carrying opcode).
    pub aeth: Option<Aeth>,
}

impl RewriteSet {
    /// `true` when no field is rewritten.
    pub fn is_empty(&self) -> bool {
        *self == RewriteSet::default()
    }

    /// Applies the rewrites to a parsed packet — the logical counterpart
    /// of patching the serialized bytes, so
    /// `patch_frame(&pkt.to_frame(), &rw)` and
    /// `{ rw.apply(&mut pkt); pkt.to_frame() }` yield identical frames.
    /// RETH/AETH rewrites are ignored when the packet carries none (the
    /// byte-level patch reports [`PatchError`] instead).
    pub fn apply(&self, pkt: &mut RocePacket) {
        if let Some(v) = self.src_mac {
            pkt.src_mac = v;
        }
        if let Some(v) = self.dst_mac {
            pkt.dst_mac = v;
        }
        if let Some(v) = self.src_ip {
            pkt.src_ip = v;
        }
        if let Some(v) = self.dst_ip {
            pkt.dst_ip = v;
        }
        if let Some(v) = self.udp_src_port {
            pkt.udp_src_port = v;
        }
        if let Some(v) = self.dest_qp {
            pkt.bth.dest_qp = v;
        }
        if let Some(v) = self.psn {
            pkt.bth.psn = v;
        }
        if let Some(reth) = &mut pkt.reth {
            if let Some(va) = self.va {
                reth.va = va;
            }
            if let Some(rkey) = self.rkey {
                reth.rkey = rkey;
            }
        }
        if let (Some(slot), Some(aeth)) = (&mut pkt.aeth, self.aeth) {
            *slot = aeth;
        }
    }

    /// The header rewrites turning `from` into `to`.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError::Structural`] when the change cannot be
    /// expressed as a header patch (different opcode, flags, extension
    /// presence, DMA length, or payload length) — callers fall back to a
    /// full [`RocePacket::to_frame`], the model of a deparser emitting a
    /// structurally new packet.
    ///
    /// The data-plane contract is that payload *bytes* are never
    /// rewritten — match-action stages only see headers, as on the ASIC —
    /// so equal-length payloads are assumed identical (checked in debug
    /// builds).
    pub fn diff(from: &RocePacket, to: &RocePacket) -> Result<RewriteSet, PatchError> {
        let structural = from.bth.opcode != to.bth.opcode
            || from.bth.ack_req != to.bth.ack_req
            || from.reth.is_some() != to.reth.is_some()
            || from.aeth.is_some() != to.aeth.is_some()
            || from.reth.map(|r| r.dma_len) != to.reth.map(|r| r.dma_len)
            || from.payload.len() != to.payload.len();
        if structural {
            return Err(PatchError::Structural);
        }
        debug_assert_eq!(
            from.payload, to.payload,
            "data-plane stages must not rewrite payload bytes"
        );
        let delta = |changed: bool| changed.then_some(());
        Ok(RewriteSet {
            src_mac: delta(from.src_mac != to.src_mac).map(|()| to.src_mac),
            dst_mac: delta(from.dst_mac != to.dst_mac).map(|()| to.dst_mac),
            src_ip: delta(from.src_ip != to.src_ip).map(|()| to.src_ip),
            dst_ip: delta(from.dst_ip != to.dst_ip).map(|()| to.dst_ip),
            udp_src_port: delta(from.udp_src_port != to.udp_src_port).map(|()| to.udp_src_port),
            dest_qp: delta(from.bth.dest_qp != to.bth.dest_qp).map(|()| to.bth.dest_qp),
            psn: delta(from.bth.psn != to.bth.psn).map(|()| to.bth.psn),
            va: match (from.reth, to.reth) {
                (Some(a), Some(b)) if a.va != b.va => Some(b.va),
                _ => None,
            },
            rkey: match (from.reth, to.reth) {
                (Some(a), Some(b)) if a.rkey != b.rkey => Some(b.rkey),
                _ => None,
            },
            aeth: match (from.aeth, to.aeth) {
                (Some(a), Some(b)) if a != b => Some(b),
                _ => None,
            },
        })
    }
}

/// Why a frame could not be patched in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchError {
    /// The buffer is not a structurally valid RoCE v2 frame.
    Malformed,
    /// The rewrite targets a RETH field but the opcode carries none.
    NoReth,
    /// The rewrite targets the AETH but the opcode carries none.
    NoAeth,
    /// The change is not expressible as a header patch; re-serialize.
    Structural,
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::Malformed => write!(f, "not a structurally valid RoCE frame"),
            PatchError::NoReth => write!(f, "rewrite targets a RETH the opcode does not carry"),
            PatchError::NoAeth => write!(f, "rewrite targets an AETH the opcode does not carry"),
            PatchError::Structural => write!(f, "structural change requires re-serialization"),
        }
    }
}

impl Error for PatchError {}

/// Walks the structural headers of a serialized frame and returns the
/// payload offset (no checksum verification — the frame is trusted to be
/// internally consistent, e.g. produced by [`RocePacket::to_frame`]).
fn frame_payload_offset(buf: &[u8]) -> Result<usize, PatchError> {
    if buf.len() < BASE_OVERHEAD {
        return Err(PatchError::Malformed);
    }
    if u16::from_be_bytes([buf[12], buf[13]]) != 0x0800
        || buf[IP_OFF] != 0x45
        || buf[IP_OFF + 9] != 17
        || u16::from_be_bytes([buf[UDP_SPORT_OFF + 2], buf[UDP_SPORT_OFF + 3]]) != ROCE_UDP_PORT
    {
        return Err(PatchError::Malformed);
    }
    let opcode = Opcode::from_wire(buf[TRANSPORT_OFF]).ok_or(PatchError::Malformed)?;
    let mut off = EXT_OFF;
    if opcode.carries_reth() {
        off += RETH_LEN;
    }
    if opcode.carries_aeth() {
        off += AETH_LEN;
    }
    if buf.len() < off + ICRC_LEN {
        return Err(PatchError::Malformed);
    }
    Ok(off)
}

/// RFC 1624 incremental one's-complement checksum update: the checksum
/// after one 16-bit word changes from `old` to `new`.
fn cksum_update(hc: u16, old: u16, new: u16) -> u16 {
    let mut sum = u32::from(!hc) + u32::from(!old) + u32::from(new);
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// The raw CRC register over the ICRC-covered header region (pseudo-header
/// plus transport headers, payload excluded).
fn header_region_crc(buf: &[u8], payload_off: usize) -> u32 {
    let src_ip = Ipv4Addr::new(
        buf[IP_SRC_OFF],
        buf[IP_SRC_OFF + 1],
        buf[IP_SRC_OFF + 2],
        buf[IP_SRC_OFF + 3],
    );
    let dst_ip = Ipv4Addr::new(
        buf[IP_DST_OFF],
        buf[IP_DST_OFF + 1],
        buf[IP_DST_OFF + 2],
        buf[IP_DST_OFF + 3],
    );
    let sport = u16::from_be_bytes([buf[UDP_SPORT_OFF], buf[UDP_SPORT_OFF + 1]]);
    let h = crc32_raw(CRC32_INIT, &icrc_pseudo(src_ip, dst_ip, sport));
    crc32_raw(h, &buf[TRANSPORT_OFF..payload_off])
}

/// Applies `rw` to the serialized frame bytes in `buf` (payload offset
/// already known), fixing the IPv4 checksum incrementally and folding the
/// header-CRC delta into the ICRC. Never reads the payload bytes.
fn patch_in_place(buf: &mut [u8], payload_off: usize, rw: &RewriteSet) -> Result<(), PatchError> {
    let h_old = header_region_crc(buf, payload_off);
    patch_in_place_from(buf, payload_off, rw, h_old)
}

/// [`patch_in_place`] with the pre-patch header CRC supplied by the
/// caller — templates stamp many copies from one immutable buffer, so
/// they compute `h_old` once at build time instead of per copy.
fn patch_in_place_from(
    buf: &mut [u8],
    payload_off: usize,
    rw: &RewriteSet,
    h_old: u32,
) -> Result<(), PatchError> {
    let opcode = Opcode::from_wire(buf[TRANSPORT_OFF]).ok_or(PatchError::Malformed)?;
    if (rw.va.is_some() || rw.rkey.is_some()) && !opcode.carries_reth() {
        return Err(PatchError::NoReth);
    }
    if rw.aeth.is_some() && !opcode.carries_aeth() {
        return Err(PatchError::NoAeth);
    }

    if let Some(mac) = rw.dst_mac {
        buf[0..6].copy_from_slice(&mac.0);
    }
    if let Some(mac) = rw.src_mac {
        buf[6..12].copy_from_slice(&mac.0);
    }
    // IP address rewrites keep the IPv4 header checksum valid via the
    // RFC 1624 incremental update — no full-header recomputation.
    for (off, new_octets) in [
        (IP_SRC_OFF, rw.src_ip.map(|ip| ip.octets())),
        (IP_DST_OFF, rw.dst_ip.map(|ip| ip.octets())),
    ] {
        let Some(octets) = new_octets else { continue };
        let mut hc = u16::from_be_bytes([buf[IP_CKSUM_OFF], buf[IP_CKSUM_OFF + 1]]);
        for w in 0..2 {
            let old = u16::from_be_bytes([buf[off + 2 * w], buf[off + 2 * w + 1]]);
            let new = u16::from_be_bytes([octets[2 * w], octets[2 * w + 1]]);
            hc = cksum_update(hc, old, new);
        }
        buf[IP_CKSUM_OFF..IP_CKSUM_OFF + 2].copy_from_slice(&hc.to_be_bytes());
        buf[off..off + 4].copy_from_slice(&octets);
    }
    if let Some(sport) = rw.udp_src_port {
        buf[UDP_SPORT_OFF..UDP_SPORT_OFF + 2].copy_from_slice(&sport.to_be_bytes());
    }
    if let Some(qpn) = rw.dest_qp {
        buf[BTH_QPN_OFF..BTH_QPN_OFF + 4].copy_from_slice(&qpn.masked().to_be_bytes());
    }
    if let Some(psn) = rw.psn {
        buf[BTH_PSN_OFF..BTH_PSN_OFF + 4].copy_from_slice(&psn.value().to_be_bytes());
    }
    if let Some(va) = rw.va {
        buf[EXT_OFF..EXT_OFF + 8].copy_from_slice(&va.to_be_bytes());
    }
    if let Some(rkey) = rw.rkey {
        buf[EXT_OFF + 8..EXT_OFF + 12].copy_from_slice(&rkey.0.to_be_bytes());
    }
    if let Some(aeth) = rw.aeth {
        buf[EXT_OFF] = aeth.syndrome();
        buf[EXT_OFF + 1..EXT_OFF + 4].copy_from_slice(&aeth.msn.to_be_bytes()[1..4]);
    }

    // ICRC: CRC-32 is linear, so the delta between the old and new header
    // CRCs, shifted past the (untouched, un-rehashed) payload, is exactly
    // the delta of the full-stream ICRC.
    let h_new = header_region_crc(buf, payload_off);
    let payload_len = buf.len() - payload_off - ICRC_LEN;
    let icrc_off = buf.len() - ICRC_LEN;
    let old_icrc = u32::from_be_bytes(buf[icrc_off..].try_into().expect("slice len"));
    let new_icrc = old_icrc ^ crc32_shift(h_old ^ h_new, payload_len);
    buf[icrc_off..].copy_from_slice(&new_icrc.to_be_bytes());
    Ok(())
}

/// Rewrites header fields of a serialized frame without re-serializing or
/// re-hashing the payload: the zero-copy fast path of the switch model.
///
/// The input frame must be internally consistent (valid ICRC); the output
/// then parses to the same packet with `rw` applied. For changes a header
/// patch cannot express, fall back to [`RocePacket::to_frame`].
///
/// # Errors
///
/// [`PatchError::Malformed`] when `frame` is not structurally RoCE v2,
/// [`PatchError::NoReth`]/[`PatchError::NoAeth`] when `rw` targets an
/// extension header the opcode does not carry.
pub fn patch_frame(frame: &Frame, rw: &RewriteSet) -> Result<Frame, PatchError> {
    let payload_off = frame_payload_offset(&frame.data)?;
    if rw.is_empty() {
        return Ok(frame.clone());
    }
    let mut buf = frame.data.to_vec();
    patch_in_place(&mut buf, payload_off, rw)?;
    // A checksum-correct input patched with checksum-correct deltas is
    // checksum-correct by construction; an unverified input stays so.
    if frame.is_verified() {
        Ok(Frame::new_verified(Bytes::from(buf)))
    } else {
        Ok(Frame::from(buf))
    }
}

/// A serialized packet plus its parse, ready to be stamped out with
/// per-copy header rewrites — the model of the replication engine handing
/// identical copies to per-port deparsers that each rewrite a handful of
/// fields (§IV-B).
///
/// The template is built once per ingress packet; every
/// [`PacketTemplate::instantiate`] costs one buffer copy plus a
/// header-sized CRC, independent of payload length.
#[derive(Debug, Clone)]
pub struct PacketTemplate {
    frame: Frame,
    pkt: RocePacket,
    payload_off: usize,
    /// Header-region CRC of `frame` (pseudo-header + transport headers),
    /// computed once at build time so each stamped copy pays only the
    /// post-patch header hash.
    header_crc: u32,
}

impl PacketTemplate {
    /// The parsed packet the template was built from.
    pub fn packet(&self) -> &RocePacket {
        &self.pkt
    }

    /// The serialized frame the template stamps copies from.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// Emits a frame equal to `target.to_frame()` by patching the template
    /// bytes, provided `target` differs from the template's packet only in
    /// patchable header fields.
    ///
    /// # Errors
    ///
    /// [`PatchError::Structural`] when `target` changed opcode, flags,
    /// extension presence, DMA length or payload length — the caller
    /// must re-serialize.
    pub fn instantiate(&self, target: &RocePacket) -> Result<Frame, PatchError> {
        let rw = RewriteSet::diff(&self.pkt, target)?;
        self.stamp(&rw)
    }

    /// Emits a frame with `rw` patched onto the template bytes — the
    /// no-diff fast path for callers that already know exactly which
    /// header fields change (per-QP ACK emission, the switch's scatter
    /// rewrites). Costs one buffer copy plus one header-sized CRC.
    ///
    /// # Errors
    ///
    /// As [`patch_frame`]: `rw` must only touch header fields the
    /// template's opcode carries.
    pub fn stamp(&self, rw: &RewriteSet) -> Result<Frame, PatchError> {
        if rw.is_empty() {
            // Untouched copy: share the template bytes outright.
            return Ok(self.frame.clone());
        }
        let mut buf = self.frame.data.to_vec();
        patch_in_place_from(&mut buf, self.payload_off, rw, self.header_crc)?;
        if self.frame.is_verified() {
            Ok(Frame::new_verified(Bytes::from(buf)))
        } else {
            Ok(Frame::from(buf))
        }
    }

    /// Builds a template by serializing `pkt` once. The resulting frame is
    /// checksum-correct by construction, so it is marked verified and every
    /// [`PacketTemplate::instantiate`] stamped from it inherits that mark.
    pub fn from_packet(pkt: &RocePacket) -> PacketTemplate {
        let frame = pkt.to_frame();
        let payload_off = frame.data.len() - pkt.payload.len() - ICRC_LEN;
        let header_crc = header_region_crc(&frame.data, payload_off);
        PacketTemplate {
            frame: Frame::new_verified(frame.data),
            pkt: pkt.clone(),
            payload_off,
            header_crc,
        }
    }
}

/// Payloads at or above this length are worth a [`PayloadCrcCache`] probe;
/// shorter ones hash faster than the lookup costs.
pub const PAYLOAD_CRC_CACHE_MIN: usize = 64;

const PAYLOAD_CRC_CACHE_SLOTS: usize = 64;

#[derive(Debug, Clone, Copy)]
struct PayloadCrcSlot {
    id: u64,
    start: usize,
    end: usize,
    crc: u32,
}

/// Direct-mapped memo of raw payload CRCs keyed on [`Bytes::identity`].
///
/// Retransmits, fan-out replicas and verify-after-serialize all hash the
/// same immutable payload allocation repeatedly; the identity key (unique
/// allocation id + range) makes a hit provably byte-equal, so the cached
/// register can be stitched into a full-frame ICRC with
/// [`crc32_combine`]-style shifting instead of re-hashing the payload.
#[derive(Debug)]
pub struct PayloadCrcCache {
    slots: [PayloadCrcSlot; PAYLOAD_CRC_CACHE_SLOTS],
    hits: u64,
    misses: u64,
}

impl Default for PayloadCrcCache {
    fn default() -> Self {
        PayloadCrcCache {
            // Allocation id 0 is never issued, so it marks an empty slot.
            slots: [PayloadCrcSlot {
                id: 0,
                start: 0,
                end: 0,
                crc: 0,
            }; PAYLOAD_CRC_CACHE_SLOTS],
            hits: 0,
            misses: 0,
        }
    }
}

impl PayloadCrcCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PayloadCrcCache::default()
    }

    /// The raw (uninverted, init 0) CRC register of `payload`, cached.
    pub fn payload_crc(&mut self, payload: &Bytes) -> u32 {
        let (id, start, end) = payload.identity();
        let idx = ((id as usize) ^ start) % PAYLOAD_CRC_CACHE_SLOTS;
        let slot = &mut self.slots[idx];
        if slot.id == id && slot.start == start && slot.end == end {
            self.hits += 1;
            return slot.crc;
        }
        let crc = crc32_raw(0, payload);
        *slot = PayloadCrcSlot {
            id,
            start,
            end,
            crc,
        };
        self.misses += 1;
        crc
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}
/// Returns 0 when validating a header whose checksum field is correct.
pub fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = header.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) with GF(2) combine support
// ---------------------------------------------------------------------

const CRC32_POLY: u32 = 0xedb8_8320;
const CRC32_INIT: u32 = 0xffff_ffff;

/// Slice-by-8 lookup tables: `CRC32_TABLES[k][b]` advances the register
/// past byte `b` followed by `k` zero bytes. Table 0 is the classic
/// byte-at-a-time table; each further table composes one more zero-byte
/// step. Identical output to the byte loop; 8 KiB total, half the cache
/// footprint of the slice-by-16 variant this replaced.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                CRC32_POLY ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xff) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// One 8-byte table step: folds `chunk` (exactly 8 bytes) into register
/// `c` via eight table lookups with no serial dependency between them —
/// the latency chain is one XOR into `q0` plus the final XOR tree.
#[inline(always)]
fn crc32_step8(c: u32, chunk: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let q0 = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
    let q1 = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
    t[7][(q0 & 0xff) as usize]
        ^ t[6][((q0 >> 8) & 0xff) as usize]
        ^ t[5][((q0 >> 16) & 0xff) as usize]
        ^ t[4][(q0 >> 24) as usize]
        ^ t[3][(q1 & 0xff) as usize]
        ^ t[2][((q1 >> 8) & 0xff) as usize]
        ^ t[1][((q1 >> 16) & 0xff) as usize]
        ^ t[0][(q1 >> 24) as usize]
}

/// Slice-by-8 kernel: advances the raw register 8 bytes per step, byte
/// tail for the remainder. Exposed (with raw-register semantics: no init
/// or final conditioning) for differential tests and microbenchmarks.
pub fn crc32_slice8_raw(init: u32, data: &[u8]) -> u32 {
    let mut c = init;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        c = crc32_step8(c, chunk);
    }
    for &b in chunks.remainder() {
        c = CRC32_TABLES[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

/// Byte length above which [`crc32_raw`] switches to the two-lane kernel.
/// Below this the [`crc32_shift`] stitch costs more than the instruction-
/// level parallelism buys back.
const TWO_LANE_CUTOVER: usize = 128;

/// Two-lane interleaved kernel: splits the input into two equal
/// 8-byte-aligned lanes processed in one interleaved loop — two
/// independent dependency chains, so the table-load latency of one lane
/// hides behind the other — then stitches the lanes back together with
/// the GF(2) [`crc32_combine`] operator and finishes the tail with the
/// slice-by-8 kernel.
///
/// Lane B starts from register 0, which is what makes the stitch exact:
/// the raw register is affine in (init, data), so
/// `raw(init, A ∥ B) = shift(raw(init, A), |B|) ^ raw(0, B)`, which is
/// `crc32_combine(raw(init, A), raw(0, B), |B|)` verbatim. Exposed (raw
/// register semantics) for differential tests and microbenchmarks.
pub fn crc32_two_lane_raw(init: u32, data: &[u8]) -> u32 {
    let half = (data.len() / 2) & !7;
    if half == 0 {
        return crc32_slice8_raw(init, data);
    }
    let (a, rest) = data.split_at(half);
    let (b, tail) = rest.split_at(half);
    let mut ca = init;
    let mut cb = 0u32;
    let mut ia = a.chunks_exact(8);
    let mut ib = b.chunks_exact(8);
    for (ka, kb) in (&mut ia).zip(&mut ib) {
        ca = crc32_step8(ca, ka);
        cb = crc32_step8(cb, kb);
    }
    debug_assert!(ia.remainder().is_empty() && ib.remainder().is_empty());
    let c = crc32_combine(ca, cb, half);
    crc32_slice8_raw(c, tail)
}

/// Advances the raw (unconditioned) CRC register over `data`, dispatching
/// to the two-lane kernel when the input is long enough to amortize the
/// lane stitch.
fn crc32_raw(init: u32, data: &[u8]) -> u32 {
    if data.len() >= TWO_LANE_CUTOVER {
        crc32_two_lane_raw(init, data)
    } else {
        crc32_slice8_raw(init, data)
    }
}

/// The CRC-32 of `data` (init and final XOR `0xffff_ffff`, as in zlib).
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_raw(CRC32_INIT, data)
}

/// Applies the GF(2) matrix `mat` to the bit-vector `vec`. Branchless:
/// each row is masked in by sign-extending the corresponding vector bit,
/// so the CPU never mispredicts on the (pseudorandom) CRC bits.
const fn gf2_times(mat: &[u32; 32], vec: u32) -> u32 {
    let mut sum = 0;
    let mut i = 0;
    while i < 32 {
        sum ^= mat[i] & 0u32.wrapping_sub((vec >> i) & 1);
        i += 1;
    }
    sum
}

/// Squares a GF(2) matrix.
const fn gf2_square(mat: &[u32; 32]) -> [u32; 32] {
    let mut sq = [0u32; 32];
    let mut n = 0;
    while n < 32 {
        sq[n] = gf2_times(mat, mat[n]);
        n += 1;
    }
    sq
}

/// `SHIFT_MATRICES[k]` is the linear operator advancing a CRC register
/// past `2^k` zero *bytes*; composing the operators for the set bits of a
/// length shifts past that many bytes in O(popcount) matrix applications.
/// Built at compile time by repeated squaring of the one-bit operator.
const SHIFT_MATRICES: [[u32; 32]; 32] = {
    // The operator for a single zero *bit*: bit 0 folds into the
    // polynomial, every other bit moves down one position.
    let mut bit = [0u32; 32];
    bit[0] = CRC32_POLY;
    let mut n = 1;
    while n < 32 {
        bit[n] = 1 << (n - 1);
        n += 1;
    }
    // Square three times: 1 bit → 2 → 4 → 8 bits = one byte.
    let byte = gf2_square(&gf2_square(&gf2_square(&bit)));
    let mut out = [[0u32; 32]; 32];
    out[0] = byte;
    let mut k = 1;
    while k < 32 {
        out[k] = gf2_square(&out[k - 1]);
        k += 1;
    }
    out
};

/// Advances a CRC register past `len` zero bytes — equivalently,
/// multiplies it by `x^(8·len)` in GF(2)[x] modulo the CRC polynomial.
fn crc32_shift(mut crc: u32, mut len: usize) -> u32 {
    let mut k = 0;
    while len != 0 && crc != 0 {
        if len & 1 != 0 {
            crc = gf2_times(&SHIFT_MATRICES[k], crc);
        }
        len >>= 1;
        k += 1;
    }
    crc
}

/// Combines two CRC-32s: given `crc1 = crc32(a)` and `crc2 = crc32(b)`,
/// returns `crc32(a ∥ b)` where `len2 = b.len()` — without touching the
/// underlying bytes (zlib's `crc32_combine`).
pub fn crc32_combine(crc1: u32, crc2: u32, len2: usize) -> u32 {
    crc32_shift(crc1, len2) ^ crc2
}

/// The ICRC pseudo-header: the address fields endpoints verify but the
/// IP/UDP layers may legitimately rewrite checksums around.
fn icrc_pseudo(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, udp_src_port: u16) -> [u8; 10] {
    let mut p = [0u8; 10];
    p[..4].copy_from_slice(&src_ip.octets());
    p[4..8].copy_from_slice(&dst_ip.octets());
    p[8..10].copy_from_slice(&udp_src_port.to_be_bytes());
    p
}

/// The integrity checksum covering the fields RDMA endpoints verify.
///
/// CRC-32 over a pseudo-header (addresses + source port) plus the
/// transport bytes and payload. Any in-flight rewrite of a covered field
/// forces whoever rewrote it to recompute the checksum — but because
/// CRC-32 is linear, a header-only rewrite can do so from the header
/// bytes alone (see [`patch_frame`]).
pub fn icrc_compute(
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    udp_src_port: u16,
    transport: &[u8],
) -> u32 {
    let h = crc32_raw(CRC32_INIT, &icrc_pseudo(src_ip, dst_ip, udp_src_port));
    !crc32_raw(h, transport)
}

/// Why a frame failed to parse as RoCE v2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Frame shorter than the mandatory headers.
    TooShort,
    /// Not an IPv4 packet (or has IPv4 options, which we never emit).
    NotIpv4,
    /// IPv4 payload is not UDP.
    NotUdp,
    /// IPv4 header checksum mismatch.
    BadIpChecksum,
    /// UDP destination port is not the RoCE port.
    NotRoce,
    /// Unknown BTH opcode.
    BadOpcode(u8),
    /// Unknown AETH syndrome encoding.
    BadAethSyndrome(u8),
    /// Integrity checksum mismatch (corrupt or incompletely-rewritten
    /// packet).
    BadIcrc,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::TooShort => write!(f, "frame too short for RoCE headers"),
            ParseError::NotIpv4 => write!(f, "not an IPv4 packet"),
            ParseError::NotUdp => write!(f, "not a UDP datagram"),
            ParseError::BadIpChecksum => write!(f, "invalid IPv4 header checksum"),
            ParseError::NotRoce => write!(f, "UDP destination is not the RoCE port"),
            ParseError::BadOpcode(op) => write!(f, "unknown BTH opcode {op:#04x}"),
            ParseError::BadAethSyndrome(s) => write!(f, "unknown AETH syndrome {s:#04x}"),
            ParseError::BadIcrc => write!(f, "integrity checksum mismatch"),
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_write() -> RocePacket {
        let src_ip = Ipv4Addr::new(10, 0, 0, 1);
        let dst_ip = Ipv4Addr::new(10, 0, 0, 2);
        RocePacket {
            src_mac: MacAddr::for_ip(src_ip),
            dst_mac: MacAddr::for_ip(dst_ip),
            src_ip,
            dst_ip,
            udp_src_port: 0xC000,
            bth: Bth {
                opcode: Opcode::WriteOnly,
                dest_qp: Qpn(0x12345),
                psn: Psn::new(77),
                ack_req: true,
            },
            reth: Some(Reth {
                va: 0xdead_beef_0000,
                rkey: RKey(0xabcd_ef01),
                dma_len: 64,
            }),
            aeth: None,
            payload: Bytes::from(vec![0x5a; 64]),
        }
    }

    #[test]
    fn write_roundtrip() {
        let pkt = sample_write();
        let frame = pkt.to_frame();
        assert_eq!(frame.len(), pkt.wire_len());
        let back = RocePacket::parse(&frame).expect("parse");
        assert_eq!(back, pkt);
    }

    #[test]
    fn ack_roundtrip_with_credits() {
        let src_ip = Ipv4Addr::new(10, 0, 0, 2);
        let dst_ip = Ipv4Addr::new(10, 0, 0, 1);
        let pkt = RocePacket {
            src_mac: MacAddr::for_ip(src_ip),
            dst_mac: MacAddr::for_ip(dst_ip),
            src_ip,
            dst_ip,
            udp_src_port: 0xC001,
            bth: Bth {
                opcode: Opcode::Acknowledge,
                dest_qp: Qpn(9),
                psn: Psn::new(77),
                ack_req: false,
            },
            reth: None,
            aeth: Some(Aeth {
                kind: AethKind::Ack { credits: 13 },
                msn: 42,
            }),
            payload: Bytes::new(),
        };
        let back = RocePacket::parse(&pkt.to_frame()).expect("parse");
        assert_eq!(back.aeth, pkt.aeth);
        assert_eq!(back.bth.psn, pkt.bth.psn);
    }

    #[test]
    fn nak_roundtrip() {
        let mut pkt = sample_write();
        pkt.bth.opcode = Opcode::Acknowledge;
        pkt.bth.ack_req = false;
        pkt.reth = None;
        pkt.payload = Bytes::new();
        for code in [
            NakCode::PsnSequenceError,
            NakCode::InvalidRequest,
            NakCode::RemoteAccessError,
            NakCode::RemoteOperationalError,
        ] {
            pkt.aeth = Some(Aeth {
                kind: AethKind::Nak(code),
                msn: 1,
            });
            let back = RocePacket::parse(&pkt.to_frame()).expect("parse");
            assert_eq!(back.aeth.expect("aeth").kind, AethKind::Nak(code));
        }
    }

    #[test]
    fn tampering_breaks_icrc() {
        let frame = sample_write().to_frame();
        let mut raw = frame.data.to_vec();
        // Flip a bit in the PSN without fixing the ICRC.
        let psn_off = ETH_LEN + IPV4_LEN + UDP_LEN + 11;
        raw[psn_off] ^= 1;
        let err = RocePacket::parse(&Frame::from(raw)).expect_err("must fail");
        assert_eq!(err, ParseError::BadIcrc);
    }

    #[test]
    fn rewriting_and_recomputing_icrc_parses() {
        let frame = sample_write().to_frame();
        let mut pkt = RocePacket::parse(&frame).expect("parse");
        pkt.bth.psn = Psn::new(1234);
        pkt.dst_ip = Ipv4Addr::new(10, 0, 0, 9);
        pkt.dst_mac = MacAddr::for_ip(pkt.dst_ip);
        let reparsed = RocePacket::parse(&pkt.to_frame()).expect("reparse");
        assert_eq!(reparsed.bth.psn, Psn::new(1234));
    }

    #[test]
    fn short_frames_rejected() {
        assert_eq!(
            RocePacket::parse(&Frame::from(vec![0u8; 10])),
            Err(ParseError::TooShort)
        );
    }

    #[test]
    fn non_roce_traffic_rejected_cleanly() {
        let frame = sample_write().to_frame();
        let mut raw = frame.data.to_vec();
        // Break the UDP destination port.
        let dport_off = ETH_LEN + IPV4_LEN + 2;
        raw[dport_off] = 0;
        raw[dport_off + 1] = 80;
        assert_eq!(
            RocePacket::parse(&Frame::from(raw)),
            Err(ParseError::NotRoce)
        );
    }

    #[test]
    fn ip_checksum_validates() {
        let frame = sample_write().to_frame();
        let mut raw = frame.data.to_vec();
        raw[ETH_LEN + 8] = 1; // corrupt the TTL
        assert_eq!(
            RocePacket::parse(&Frame::from(raw)),
            Err(ParseError::BadIpChecksum)
        );
    }

    #[test]
    fn wire_len_accounts_for_extensions() {
        let w = sample_write();
        assert_eq!(w.wire_len(), BASE_OVERHEAD + RETH_LEN + 64);
    }

    #[test]
    fn credits_clamp_at_field_width() {
        let a = Aeth {
            kind: AethKind::Ack { credits: 200 },
            msn: 0,
        };
        assert_eq!(a.syndrome(), MAX_CREDITS);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_combine_equals_concatenation() {
        let a = b"the header region of a packet";
        let b = b"and a payload the patcher never re-reads";
        assert_eq!(
            crc32_combine(crc32(a), crc32(b), b.len()),
            crc32(&[&a[..], &b[..]].concat())
        );
        // Degenerate lengths.
        assert_eq!(crc32_combine(crc32(a), crc32(b""), 0), crc32(a));
        let zeros = vec![0u8; 8192];
        assert_eq!(
            crc32_combine(crc32(a), crc32(&zeros), zeros.len()),
            crc32(&[&a[..], &zeros[..]].concat())
        );
    }

    #[test]
    fn empty_patch_shares_bytes_unchanged() {
        let frame = sample_write().to_frame();
        let out = patch_frame(&frame, &RewriteSet::default()).expect("patch");
        assert_eq!(out.data, frame.data);
    }

    #[test]
    fn patch_matches_full_reserialization() {
        let pkt = sample_write();
        let frame = pkt.to_frame();
        let rw = RewriteSet {
            dst_mac: Some(MacAddr::for_ip(Ipv4Addr::new(10, 0, 0, 7))),
            dst_ip: Some(Ipv4Addr::new(10, 0, 0, 7)),
            udp_src_port: Some(0xD005),
            dest_qp: Some(Qpn(0x777)),
            psn: Some(Psn::new(4242)),
            va: Some(0x1_0000),
            rkey: Some(RKey(0x5555_aaaa)),
            ..RewriteSet::default()
        };
        let patched = patch_frame(&frame, &rw).expect("patch");
        let mut expect = pkt.clone();
        rw.apply(&mut expect);
        assert_eq!(&*patched.data, &*expect.to_frame().data);
        // And it parses with a valid IPv4 checksum and ICRC.
        let back = RocePacket::parse(&patched).expect("parse patched");
        assert_eq!(back, expect);
    }

    #[test]
    fn patch_rewrites_aeth_on_acks() {
        let src_ip = Ipv4Addr::new(10, 0, 0, 2);
        let pkt = RocePacket {
            src_mac: MacAddr::for_ip(src_ip),
            dst_mac: MacAddr::for_ip(src_ip),
            src_ip,
            dst_ip: src_ip,
            udp_src_port: 7,
            bth: Bth {
                opcode: Opcode::Acknowledge,
                dest_qp: Qpn(9),
                psn: Psn::new(5),
                ack_req: false,
            },
            reth: None,
            aeth: Some(Aeth {
                kind: AethKind::Ack { credits: 31 },
                msn: 5,
            }),
            payload: Bytes::new(),
        };
        let rw = RewriteSet {
            aeth: Some(Aeth {
                kind: AethKind::Ack { credits: 3 },
                msn: 5,
            }),
            ..RewriteSet::default()
        };
        let patched = patch_frame(&pkt.to_frame(), &rw).expect("patch");
        let back = RocePacket::parse(&patched).expect("parse");
        assert_eq!(back.aeth, rw.aeth);
    }

    #[test]
    fn patch_rejects_extension_rewrites_the_opcode_lacks() {
        let mut ack = sample_write();
        ack.bth.opcode = Opcode::Acknowledge;
        ack.reth = None;
        ack.payload = Bytes::new();
        ack.aeth = Some(Aeth {
            kind: AethKind::Ack { credits: 1 },
            msn: 0,
        });
        let frame = ack.to_frame();
        let rw = RewriteSet {
            va: Some(42),
            ..RewriteSet::default()
        };
        assert_eq!(patch_frame(&frame, &rw), Err(PatchError::NoReth));

        let write_frame = sample_write().to_frame();
        let rw = RewriteSet {
            aeth: Some(Aeth {
                kind: AethKind::Ack { credits: 1 },
                msn: 0,
            }),
            ..RewriteSet::default()
        };
        assert_eq!(patch_frame(&write_frame, &rw), Err(PatchError::NoAeth));
    }

    #[test]
    fn template_instantiate_matches_to_frame() {
        let pkt = sample_write();
        let template = RocePacket::parse_with_template(&pkt.to_frame()).expect("template");
        let mut target = template.packet().clone();
        target.dst_ip = Ipv4Addr::new(10, 0, 0, 9);
        target.dst_mac = MacAddr::for_ip(target.dst_ip);
        target.bth.dest_qp = Qpn(0x200);
        target.bth.psn = Psn::new(99);
        if let Some(reth) = &mut target.reth {
            reth.va += 0x4000;
            reth.rkey = RKey(0xfeed);
        }
        let fast = template.instantiate(&target).expect("instantiate");
        assert_eq!(&*fast.data, &*target.to_frame().data);
    }

    #[test]
    fn template_reports_structural_changes() {
        let pkt = sample_write();
        let template = RocePacket::parse_with_template(&pkt.to_frame()).expect("template");
        let mut target = template.packet().clone();
        target.payload = Bytes::from(vec![1u8; 65]); // length change
        assert_eq!(template.instantiate(&target), Err(PatchError::Structural));
        let mut target = template.packet().clone();
        target.bth.ack_req = !target.bth.ack_req;
        assert_eq!(template.instantiate(&target), Err(PatchError::Structural));
    }

    #[test]
    fn incremental_ip_checksum_stays_valid() {
        // Adversarial addresses for the one's-complement arithmetic.
        for dst in [
            Ipv4Addr::new(0, 0, 0, 0),
            Ipv4Addr::new(255, 255, 255, 255),
            Ipv4Addr::new(0xff, 0xff, 0, 0),
            Ipv4Addr::new(1, 2, 3, 4),
        ] {
            let rw = RewriteSet {
                dst_ip: Some(dst),
                ..RewriteSet::default()
            };
            let patched = patch_frame(&sample_write().to_frame(), &rw).expect("patch");
            assert_eq!(ipv4_checksum(&patched.data[ETH_LEN..ETH_LEN + IPV4_LEN]), 0);
        }
    }
}
