//! InfiniBand reliable-connection opcodes (BTH `OpCode` field, Table I).

use std::fmt;

/// The subset of RC transport opcodes the simulation implements, with their
/// real wire values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// SEND Only — used here to carry connection-management datagrams to QP1.
    SendOnly = 0x04,
    /// RDMA WRITE First: first packet of a multi-packet write (carries RETH).
    WriteFirst = 0x06,
    /// RDMA WRITE Middle.
    WriteMiddle = 0x07,
    /// RDMA WRITE Last.
    WriteLast = 0x08,
    /// RDMA WRITE Only: a write that fits in a single packet (carries RETH).
    WriteOnly = 0x0a,
    /// RDMA READ Request (carries RETH, no payload).
    ReadRequest = 0x0c,
    /// RDMA READ Response Only (carries AETH + payload).
    ReadResponseOnly = 0x10,
    /// Acknowledge (carries AETH). Positive or negative per the syndrome.
    Acknowledge = 0x11,
}

impl Opcode {
    /// Decodes a wire value.
    pub fn from_wire(v: u8) -> Option<Opcode> {
        Some(match v {
            0x04 => Opcode::SendOnly,
            0x06 => Opcode::WriteFirst,
            0x07 => Opcode::WriteMiddle,
            0x08 => Opcode::WriteLast,
            0x0a => Opcode::WriteOnly,
            0x0c => Opcode::ReadRequest,
            0x10 => Opcode::ReadResponseOnly,
            0x11 => Opcode::Acknowledge,
            _ => return None,
        })
    }

    /// The wire value.
    pub fn to_wire(self) -> u8 {
        self as u8
    }

    /// `true` for packets that begin a message and therefore carry an RETH
    /// (RDMA extended transport header).
    pub fn carries_reth(self) -> bool {
        matches!(
            self,
            Opcode::WriteFirst | Opcode::WriteOnly | Opcode::ReadRequest
        )
    }

    /// `true` for packets that carry an AETH (acknowledge extended header).
    pub fn carries_aeth(self) -> bool {
        matches!(self, Opcode::Acknowledge | Opcode::ReadResponseOnly)
    }

    /// `true` for any packet of an RDMA write message.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            Opcode::WriteFirst | Opcode::WriteMiddle | Opcode::WriteLast | Opcode::WriteOnly
        )
    }

    /// `true` for the final packet of a message (the one whose ACK completes
    /// the request).
    pub fn ends_message(self) -> bool {
        matches!(
            self,
            Opcode::WriteLast | Opcode::WriteOnly | Opcode::SendOnly | Opcode::ReadRequest
        )
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::SendOnly => "SEND_ONLY",
            Opcode::WriteFirst => "WRITE_FIRST",
            Opcode::WriteMiddle => "WRITE_MIDDLE",
            Opcode::WriteLast => "WRITE_LAST",
            Opcode::WriteOnly => "WRITE_ONLY",
            Opcode::ReadRequest => "READ_REQ",
            Opcode::ReadResponseOnly => "READ_RESP_ONLY",
            Opcode::Acknowledge => "ACK",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Opcode; 8] = [
        Opcode::SendOnly,
        Opcode::WriteFirst,
        Opcode::WriteMiddle,
        Opcode::WriteLast,
        Opcode::WriteOnly,
        Opcode::ReadRequest,
        Opcode::ReadResponseOnly,
        Opcode::Acknowledge,
    ];

    #[test]
    fn wire_roundtrip() {
        for op in ALL {
            assert_eq!(Opcode::from_wire(op.to_wire()), Some(op));
        }
        assert_eq!(Opcode::from_wire(0xff), None);
    }

    #[test]
    fn reth_and_aeth_classification() {
        assert!(Opcode::WriteOnly.carries_reth());
        assert!(Opcode::WriteFirst.carries_reth());
        assert!(Opcode::ReadRequest.carries_reth());
        assert!(!Opcode::WriteMiddle.carries_reth());
        assert!(Opcode::Acknowledge.carries_aeth());
        assert!(Opcode::ReadResponseOnly.carries_aeth());
        assert!(!Opcode::WriteOnly.carries_aeth());
    }

    #[test]
    fn message_boundaries() {
        assert!(Opcode::WriteOnly.ends_message());
        assert!(Opcode::WriteLast.ends_message());
        assert!(!Opcode::WriteFirst.ends_message());
        assert!(!Opcode::WriteMiddle.ends_message());
        assert!(Opcode::WriteMiddle.is_write());
        assert!(!Opcode::Acknowledge.is_write());
    }
}
