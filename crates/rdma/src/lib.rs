//! # rdma — a RoCE v2 protocol model for simulation
//!
//! The paper's substrate: ConnectX-5 NICs speaking RoCE v2 over 100 GbE.
//! That hardware is not available here, so this crate implements the
//! protocol surface P4CE manipulates, faithfully enough that the switch
//! program has to do the same work as the real one:
//!
//! * byte-exact packet formats ([`wire`]): Ethernet/IPv4/UDP/BTH/RETH/AETH
//!   with an integrity checksum that covers every field the switch
//!   rewrites,
//! * reliable-connection queue pairs ([`qp`]): segmentation,
//!   PSN sequencing, credit-based flow control, retransmission,
//! * registered memory with `R_key`s and per-peer permissions ([`memory`]),
//! * the connection-manager handshake with piggybacked private data
//!   ([`cm`]),
//! * a host node ([`host`]) whose NIC executes one-sided operations and
//!   generates ACKs without involving the host CPU — the property Mu and
//!   P4CE build their latency on.
//!
//! See the crate-level documentation of `netsim` for the resource model
//! and DESIGN.md at the workspace root for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cm;
pub mod host;
pub mod memory;
pub mod opcode;
pub mod qp;
pub mod types;
pub mod verbs;
pub mod wire;

pub use cm::{CmMessage, RegionAdvert, RejectReason};
pub use host::{CmEvent, Host, HostConfig, HostOps, HostStats, RdmaApp};
pub use memory::{AccessError, HostMemory, RegionHandle, RegionInfo};
pub use opcode::Opcode;
pub use qp::{PacketPlan, PeerInfo, QpState, QueuePair};
pub use types::{MacAddr, Permissions, Psn, Qpn, RKey, CM_QPN, DEFAULT_RDMA_MTU, ROCE_UDP_PORT};
pub use verbs::{Completion, CompletionStatus, WorkRequest, WrId};
pub use wire::{
    patch_frame, Aeth, AethKind, Bth, NakCode, PacketTemplate, ParseError, PatchError,
    PayloadCrcCache, Reth, RewriteSet, RocePacket, RoceView, PAYLOAD_CRC_CACHE_MIN,
};
