//! The reliable-connection queue pair state machine.
//!
//! This module is pure protocol logic: segmentation of work requests into
//! MTU-sized packets, PSN assignment, the flow-control window (bounded both
//! by the local limit and by the credits the responder advertises),
//! retransmission, and receive-side PSN sequencing. The NIC
//! ([`crate::host`]) drives it and performs the actual memory operations
//! and packet addressing.

use bytes::Bytes;
use netsim::SimTime;
use std::collections::VecDeque;
use std::net::Ipv4Addr;

use crate::opcode::Opcode;
use crate::types::{Psn, Qpn, RKey};
use crate::verbs::{WorkRequest, WrId};
use crate::wire::{NakCode, PacketTemplate, Reth};

/// Lifecycle of a queue pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Created; not yet part of a handshake.
    Init,
    /// Initiator: ConnectRequest sent, awaiting ConnectReply.
    Connecting,
    /// Responder: ready to receive, awaiting ReadyToUse.
    ReadyToReceive,
    /// Fully established; may send and receive.
    ReadyToSend,
    /// A fatal error occurred; all requests flush.
    Error,
}

/// The remote end of a connection, learned during the CM handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerInfo {
    /// Remote IP address.
    pub ip: Ipv4Addr,
    /// Remote queue pair number (goes in the BTH of every packet we send).
    pub qpn: Qpn,
    /// The first PSN the remote will use towards us (initializes our
    /// expected PSN).
    pub start_psn: Psn,
}

/// One packet the QP wants transmitted, before addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketPlan {
    /// Transport opcode.
    pub opcode: Opcode,
    /// Assigned sequence number.
    pub psn: Psn,
    /// Whether the packet requests an acknowledgement.
    pub ack_req: bool,
    /// RDMA extended header, for message-starting packets.
    pub reth: Option<Reth>,
    /// Payload bytes.
    pub payload: Bytes,
}

#[derive(Debug)]
struct InflightMessage {
    wr_id: WrId,
    /// PSN of the first packet of the message.
    first_psn: Psn,
    /// PSN of the packet whose ACK completes the message.
    last_psn: Psn,
    /// Every packet, retained for retransmission.
    packets: Vec<PacketPlan>,
    /// When the message was last (re)transmitted in full.
    sent_at: SimTime,
    retries: u32,
    is_read: bool,
}

/// What the requester should do after a NAK or timeout.
#[derive(Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Nothing to do (e.g. stale NAK).
    None,
    /// Retransmit these packets.
    Retransmit(Vec<PacketPlan>),
    /// Give up: fail these work requests and move the QP to error state.
    Fatal(Vec<WrId>),
}

/// Receive-side verdict for an incoming request packet.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvVerdict {
    /// Packet is in order: execute it. `ack_due` tells the NIC to emit an
    /// acknowledgement after executing.
    Execute {
        /// Emit an ACK (with current credits) once the operation succeeds.
        ack_due: bool,
    },
    /// Already-seen packet (retransmission overlap): do not re-execute,
    /// but re-acknowledge so the requester can make progress.
    Duplicate,
    /// A gap in the PSN sequence: NAK with [`NakCode::PsnSequenceError`].
    OutOfOrder,
}

/// Progress of a multi-packet RDMA write on the responder side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteCursor {
    /// Where the next payload chunk lands.
    pub va: u64,
    /// The key presented by the first packet.
    pub rkey: RKey,
    /// Bytes still expected after this packet.
    pub remaining: u64,
}

/// A reliable-connection queue pair.
#[derive(Debug)]
pub struct QueuePair {
    qpn: Qpn,
    state: QpState,
    peer: Option<PeerInfo>,
    mtu: usize,
    // --- requester (send) side ---
    next_psn: Psn,
    start_psn: Psn,
    pending: VecDeque<WorkRequest>,
    inflight: VecDeque<InflightMessage>,
    remote_credits: u8,
    max_inflight: usize,
    // --- responder (receive) side ---
    epsn: Psn,
    msn: u32,
    write_cursor: Option<WriteCursor>,
    ack_template: Option<PacketTemplate>,
}

impl QueuePair {
    /// Creates a queue pair in [`QpState::Init`].
    ///
    /// # Panics
    ///
    /// Panics if `mtu` is zero or `max_inflight` is zero.
    pub fn new(qpn: Qpn, start_psn: Psn, mtu: usize, max_inflight: usize) -> Self {
        assert!(mtu > 0, "mtu must be positive");
        assert!(max_inflight > 0, "window must allow at least one message");
        QueuePair {
            qpn,
            state: QpState::Init,
            peer: None,
            mtu,
            next_psn: start_psn,
            start_psn,
            pending: VecDeque::new(),
            inflight: VecDeque::new(),
            remote_credits: max_inflight.min(31) as u8,
            max_inflight,
            epsn: Psn::new(0),
            msn: 0,
            write_cursor: None,
            ack_template: None,
        }
    }

    /// This queue pair's number.
    pub fn qpn(&self) -> Qpn {
        self.qpn
    }

    /// Current lifecycle state.
    pub fn state(&self) -> QpState {
        self.state
    }

    /// The connected peer, if the handshake completed.
    pub fn peer(&self) -> Option<PeerInfo> {
        self.peer
    }

    /// The first PSN this side sends with (communicated in the handshake).
    pub fn start_psn(&self) -> Psn {
        self.start_psn
    }

    /// The most recent credit count advertised by the responder.
    pub fn remote_credits(&self) -> u8 {
        self.remote_credits
    }

    /// Number of messages posted but not yet transmitted.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Number of messages transmitted and awaiting acknowledgement.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// The most recently transmitted in-flight message as
    /// `(wr_id, first_psn, last_psn)` — what [`Self::next_message`] just
    /// pushed. Tracing uses this to correlate a work request with the PSN
    /// range it occupies on the wire.
    pub fn newest_inflight(&self) -> Option<(WrId, Psn, Psn)> {
        self.inflight
            .back()
            .map(|m| (m.wr_id, m.first_psn, m.last_psn))
    }

    /// Moves the QP into the connecting state (initiator half).
    pub fn begin_connect(&mut self) {
        debug_assert_eq!(self.state, QpState::Init);
        self.state = QpState::Connecting;
    }

    /// Installs the peer and opens the QP for receiving (responder half).
    pub fn establish_responder(&mut self, peer: PeerInfo) {
        self.peer = Some(peer);
        self.epsn = peer.start_psn;
        self.state = QpState::ReadyToReceive;
    }

    /// Installs the peer and opens the QP fully (initiator half, after the
    /// ConnectReply).
    pub fn establish_requester(&mut self, peer: PeerInfo) {
        self.peer = Some(peer);
        self.epsn = peer.start_psn;
        self.state = QpState::ReadyToSend;
    }

    /// Promotes a responder-side QP to fully established (on ReadyToUse).
    pub fn promote_to_rts(&mut self) {
        if self.state == QpState::ReadyToReceive {
            self.state = QpState::ReadyToSend;
        }
    }

    /// Moves the QP to the error state, flushing every queued and inflight
    /// request. Returns the flushed work request ids.
    pub fn fail(&mut self) -> Vec<WrId> {
        self.state = QpState::Error;
        let mut flushed: Vec<WrId> = self.inflight.drain(..).map(|m| m.wr_id).collect();
        flushed.extend(self.pending.drain(..).map(|w| w.wr_id()));
        flushed
    }

    /// Queues a work request for transmission.
    ///
    /// # Errors
    ///
    /// Returns the request back if the QP is not in
    /// [`QpState::ReadyToSend`].
    pub fn post(&mut self, wr: WorkRequest) -> Result<(), WorkRequest> {
        if self.state != QpState::ReadyToSend {
            return Err(wr);
        }
        self.pending.push_back(wr);
        Ok(())
    }

    /// The effective send window: bounded by the local cap and by the
    /// responder's advertised credits (never below one so the window can
    /// reopen — a zero-credit responder still refreshes credits on the ACK
    /// of the single allowed probe).
    fn window(&self) -> usize {
        self.max_inflight.min((self.remote_credits as usize).max(1))
    }

    /// `true` if [`QueuePair::next_message`] would yield packets.
    pub fn has_ready_message(&self) -> bool {
        self.state == QpState::ReadyToSend
            && !self.pending.is_empty()
            && self.inflight.len() < self.window()
    }

    /// Segments the next pending work request into packets, registers it as
    /// inflight, and returns the packets for transmission.
    ///
    /// Returns `None` when there is nothing to send or the window is full.
    pub fn next_message(&mut self, now: SimTime) -> Option<Vec<PacketPlan>> {
        if !self.has_ready_message() {
            return None;
        }
        let wr = self.pending.pop_front().expect("checked non-empty");
        let wr_id = wr.wr_id();
        let (packets, is_read) = match wr {
            WorkRequest::Write {
                remote_va,
                rkey,
                data,
                ..
            } => (self.segment_write(remote_va, rkey, data), false),
            WorkRequest::Read {
                remote_va,
                rkey,
                len,
                ..
            } => {
                let psn = self.take_psn();
                (
                    vec![PacketPlan {
                        opcode: Opcode::ReadRequest,
                        psn,
                        ack_req: true,
                        reth: Some(Reth {
                            va: remote_va,
                            rkey,
                            dma_len: len,
                        }),
                        payload: Bytes::new(),
                    }],
                    true,
                )
            }
        };
        let first_psn = packets.first().expect("at least one packet").psn;
        let last_psn = packets.last().expect("at least one packet").psn;
        self.inflight.push_back(InflightMessage {
            wr_id,
            first_psn,
            last_psn,
            packets: packets.clone(),
            sent_at: now,
            retries: 0,
            is_read,
        });
        Some(packets)
    }

    fn take_psn(&mut self) -> Psn {
        let p = self.next_psn;
        self.next_psn = self.next_psn.next();
        p
    }

    fn segment_write(&mut self, remote_va: u64, rkey: RKey, data: Bytes) -> Vec<PacketPlan> {
        let total = data.len();
        let dma_len = total as u32;
        if total <= self.mtu {
            let psn = self.take_psn();
            return vec![PacketPlan {
                opcode: Opcode::WriteOnly,
                psn,
                ack_req: true,
                reth: Some(Reth {
                    va: remote_va,
                    rkey,
                    dma_len,
                }),
                payload: data,
            }];
        }
        let mut packets = Vec::with_capacity(total.div_ceil(self.mtu));
        let mut off = 0;
        while off < total {
            let end = (off + self.mtu).min(total);
            let chunk = data.slice(off..end);
            let first = off == 0;
            let last = end == total;
            let opcode = if first {
                Opcode::WriteFirst
            } else if last {
                Opcode::WriteLast
            } else {
                Opcode::WriteMiddle
            };
            let psn = self.take_psn();
            // Long messages request intermediate acknowledgements so the
            // requester's retransmission timer observes progress (real RC
            // requesters do the same for multi-MTU transfers).
            let ack_req = last || (packets.len() % 16 == 15);
            packets.push(PacketPlan {
                opcode,
                psn,
                ack_req,
                reth: first.then_some(Reth {
                    va: remote_va,
                    rkey,
                    dma_len,
                }),
                payload: chunk,
            });
            off = end;
        }
        packets
    }

    /// Processes a positive acknowledgement for `psn` carrying `credits`.
    /// RDMA ACKs are cumulative: every inflight message whose last PSN is
    /// at or before `psn` completes. Returns `(wr_id, was_read)` per
    /// completed message, in order.
    pub fn handle_ack(&mut self, psn: Psn, credits: u8) -> Vec<(WrId, bool)> {
        let mut done = Vec::new();
        self.handle_ack_into(psn, credits, &mut done);
        done
    }

    /// [`QueuePair::handle_ack`] draining into a caller-owned buffer, so
    /// the per-ACK hot path reuses one allocation. `done` is cleared
    /// first.
    pub fn handle_ack_into(&mut self, psn: Psn, credits: u8, done: &mut Vec<(WrId, bool)>) {
        done.clear();
        self.remote_credits = credits;
        while let Some(front) = self.inflight.front() {
            let completes = front.last_psn == psn || front.last_psn.is_before(psn);
            if !completes {
                break;
            }
            let msg = self.inflight.pop_front().expect("front exists");
            done.push((msg.wr_id, msg.is_read));
        }
    }

    /// Notes transport progress: an intermediate acknowledgement within
    /// the oldest inflight message restarts its retransmission timer.
    pub fn note_progress(&mut self, psn: Psn, now: SimTime) {
        if let Some(front) = self.inflight.front_mut() {
            let within = (front.first_psn == psn || front.first_psn.is_before(psn))
                && psn.is_before(front.last_psn);
            if within {
                front.sent_at = now;
                front.retries = 0;
            }
        }
    }

    /// Processes a negative acknowledgement.
    pub fn handle_nak(&mut self, code: NakCode) -> RecoveryAction {
        match code {
            NakCode::PsnSequenceError => {
                // Go-back-N: retransmit everything inflight, oldest first.
                if self.inflight.is_empty() {
                    return RecoveryAction::None;
                }
                let mut pkts = Vec::new();
                for m in &self.inflight {
                    pkts.extend(m.packets.iter().cloned());
                }
                RecoveryAction::Retransmit(pkts)
            }
            NakCode::InvalidRequest
            | NakCode::RemoteAccessError
            | NakCode::RemoteOperationalError => {
                // Fatal for the connection: flush.
                RecoveryAction::Fatal(self.fail())
            }
        }
    }

    /// Checks the retransmission timer: if the oldest inflight message has
    /// been waiting longer than `timeout`, either retransmits it (bumping
    /// its retry count) or, past `retry_limit`, declares the connection
    /// dead.
    pub fn check_timeout(
        &mut self,
        now: SimTime,
        timeout: netsim::SimDuration,
        retry_limit: u32,
    ) -> RecoveryAction {
        let Some(oldest) = self.inflight.front_mut() else {
            return RecoveryAction::None;
        };
        if now.saturating_duration_since(oldest.sent_at) < timeout {
            return RecoveryAction::None;
        }
        if oldest.retries >= retry_limit {
            return RecoveryAction::Fatal(self.fail());
        }
        oldest.retries += 1;
        oldest.sent_at = now;
        RecoveryAction::Retransmit(oldest.packets.clone())
    }

    /// The instant of the oldest unacknowledged transmission, if any (used
    /// to schedule the next timeout check).
    pub fn oldest_inflight_sent_at(&self) -> Option<SimTime> {
        self.inflight.front().map(|m| m.sent_at)
    }

    // ------------------------------------------------------------------
    // Responder side
    // ------------------------------------------------------------------

    /// Sequences an incoming request packet against the expected PSN.
    pub fn receive_sequence(&mut self, psn: Psn, opcode: Opcode, ack_req: bool) -> RecvVerdict {
        if psn == self.epsn {
            self.epsn = self.epsn.next();
            if opcode.ends_message() {
                self.msn = (self.msn + 1) & 0x00ff_ffff;
            }
            RecvVerdict::Execute {
                ack_due: ack_req || opcode.ends_message(),
            }
        } else if psn.is_before(self.epsn) {
            RecvVerdict::Duplicate
        } else {
            RecvVerdict::OutOfOrder
        }
    }

    /// Responder-side message sequence number (echoed in AETHs).
    pub fn msn(&self) -> u32 {
        self.msn
    }

    /// The PSN the responder expects next.
    pub fn expected_psn(&self) -> Psn {
        self.epsn
    }

    /// The write cursor for an in-progress multi-packet write.
    pub fn write_cursor(&self) -> Option<WriteCursor> {
        self.write_cursor
    }

    /// Updates the write cursor after executing a write packet.
    pub fn set_write_cursor(&mut self, cursor: Option<WriteCursor>) {
        self.write_cursor = cursor;
    }

    /// The cached ACK/NAK frame template for this QP's responder side, if
    /// one has been built. ACK-class frames to a given peer differ only in
    /// PSN, MSN and syndrome, so the first full serialization seeds a
    /// template and later ACKs are stamped out via header patching.
    pub fn ack_template(&self) -> Option<&PacketTemplate> {
        self.ack_template.as_ref()
    }

    /// Seeds (or replaces) the cached ACK template.
    pub fn set_ack_template(&mut self, template: PacketTemplate) {
        self.ack_template = Some(template);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rts_qp(mtu: usize, window: usize) -> QueuePair {
        let mut qp = QueuePair::new(Qpn(5), Psn::new(100), mtu, window);
        qp.begin_connect();
        qp.establish_requester(PeerInfo {
            ip: Ipv4Addr::new(10, 0, 0, 2),
            qpn: Qpn(9),
            start_psn: Psn::new(0),
        });
        qp
    }

    fn write_wr(id: u64, len: usize) -> WorkRequest {
        WorkRequest::Write {
            wr_id: WrId(id),
            remote_va: 0x1000,
            rkey: RKey(42),
            data: Bytes::from(vec![0xab; len]),
        }
    }

    #[test]
    fn small_write_is_a_single_only_packet() {
        let mut qp = rts_qp(1024, 16);
        qp.post(write_wr(1, 64)).expect("rts");
        let pkts = qp.next_message(SimTime::ZERO).expect("ready");
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].opcode, Opcode::WriteOnly);
        assert_eq!(pkts[0].psn, Psn::new(100));
        assert!(pkts[0].ack_req);
        assert_eq!(pkts[0].reth.expect("reth").dma_len, 64);
        assert_eq!(qp.inflight_len(), 1);
    }

    #[test]
    fn large_write_segments_first_middle_last() {
        let mut qp = rts_qp(1024, 16);
        qp.post(write_wr(1, 2500)).expect("rts");
        let pkts = qp.next_message(SimTime::ZERO).expect("ready");
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].opcode, Opcode::WriteFirst);
        assert_eq!(pkts[1].opcode, Opcode::WriteMiddle);
        assert_eq!(pkts[2].opcode, Opcode::WriteLast);
        assert_eq!(pkts[0].payload.len(), 1024);
        assert_eq!(pkts[2].payload.len(), 452);
        assert!(pkts[0].reth.is_some());
        assert!(pkts[1].reth.is_none());
        assert!(pkts[2].reth.is_none());
        // Only the last packet demands an ACK.
        assert!(!pkts[0].ack_req && !pkts[1].ack_req && pkts[2].ack_req);
        // Consecutive PSNs.
        assert_eq!(pkts[1].psn, pkts[0].psn.next());
        assert_eq!(pkts[2].psn, pkts[1].psn.next());
    }

    #[test]
    fn ack_completes_cumulatively() {
        let mut qp = rts_qp(1024, 16);
        for i in 0..3 {
            qp.post(write_wr(i, 64)).expect("rts");
        }
        let p0 = qp.next_message(SimTime::ZERO).expect("m0");
        let _p1 = qp.next_message(SimTime::ZERO).expect("m1");
        let p2 = qp.next_message(SimTime::ZERO).expect("m2");
        // Ack of the first message completes only it.
        let done = qp.handle_ack(p0[0].psn, 10);
        assert_eq!(done, vec![(WrId(0), false)]);
        // Cumulative ack of the last completes the remaining two.
        let done = qp.handle_ack(p2[0].psn, 10);
        assert_eq!(done, vec![(WrId(1), false), (WrId(2), false)]);
        assert_eq!(qp.inflight_len(), 0);
        assert_eq!(qp.remote_credits(), 10);
    }

    #[test]
    fn window_blocks_at_max_inflight() {
        let mut qp = rts_qp(1024, 2);
        for i in 0..3 {
            qp.post(write_wr(i, 8)).expect("rts");
        }
        assert!(qp.next_message(SimTime::ZERO).is_some());
        assert!(qp.next_message(SimTime::ZERO).is_some());
        assert!(qp.next_message(SimTime::ZERO).is_none(), "window full");
        assert_eq!(qp.pending_len(), 1);
    }

    #[test]
    fn advertised_credits_shrink_window() {
        let mut qp = rts_qp(1024, 16);
        for i in 0..5 {
            qp.post(write_wr(i, 8)).expect("rts");
        }
        let p0 = qp.next_message(SimTime::ZERO).expect("m0");
        // The responder advertises just 1 credit.
        qp.handle_ack(p0[0].psn, 1);
        assert!(qp.next_message(SimTime::ZERO).is_some());
        assert!(
            qp.next_message(SimTime::ZERO).is_none(),
            "credit window of 1 blocks a second inflight message"
        );
    }

    #[test]
    fn zero_credits_still_allow_one_probe() {
        let mut qp = rts_qp(1024, 16);
        qp.post(write_wr(0, 8)).expect("rts");
        qp.post(write_wr(1, 8)).expect("rts");
        let p0 = qp.next_message(SimTime::ZERO).expect("m0");
        qp.handle_ack(p0[0].psn, 0);
        assert!(
            qp.next_message(SimTime::ZERO).is_some(),
            "window never closes completely"
        );
    }

    #[test]
    fn fatal_nak_flushes_everything() {
        let mut qp = rts_qp(1024, 16);
        for i in 0..3 {
            qp.post(write_wr(i, 8)).expect("rts");
        }
        let _ = qp.next_message(SimTime::ZERO);
        let action = qp.handle_nak(NakCode::RemoteAccessError);
        match action {
            RecoveryAction::Fatal(ids) => {
                assert_eq!(ids, vec![WrId(0), WrId(1), WrId(2)]);
            }
            other => panic!("expected fatal, got {other:?}"),
        }
        assert_eq!(qp.state(), QpState::Error);
        assert!(qp.post(write_wr(9, 8)).is_err());
    }

    #[test]
    fn sequence_nak_retransmits_all_inflight() {
        let mut qp = rts_qp(1024, 16);
        qp.post(write_wr(0, 8)).expect("rts");
        qp.post(write_wr(1, 8)).expect("rts");
        let p0 = qp.next_message(SimTime::ZERO).expect("m0");
        let p1 = qp.next_message(SimTime::ZERO).expect("m1");
        match qp.handle_nak(NakCode::PsnSequenceError) {
            RecoveryAction::Retransmit(pkts) => {
                assert_eq!(pkts.len(), 2);
                assert_eq!(pkts[0].psn, p0[0].psn);
                assert_eq!(pkts[1].psn, p1[0].psn);
            }
            other => panic!("expected retransmit, got {other:?}"),
        }
    }

    #[test]
    fn timeout_retransmits_then_gives_up() {
        let mut qp = rts_qp(1024, 16);
        qp.post(write_wr(0, 8)).expect("rts");
        let _ = qp.next_message(SimTime::ZERO);
        let timeout = netsim::SimDuration::from_micros(131);
        // Before the deadline: nothing.
        assert_eq!(
            qp.check_timeout(SimTime::from_micros(100), timeout, 2),
            RecoveryAction::None
        );
        // After: retransmit (twice), then fatal.
        let t1 = SimTime::from_micros(200);
        assert!(matches!(
            qp.check_timeout(t1, timeout, 2),
            RecoveryAction::Retransmit(_)
        ));
        let t2 = SimTime::from_micros(400);
        assert!(matches!(
            qp.check_timeout(t2, timeout, 2),
            RecoveryAction::Retransmit(_)
        ));
        let t3 = SimTime::from_micros(600);
        assert_eq!(
            qp.check_timeout(t3, timeout, 2),
            RecoveryAction::Fatal(vec![WrId(0)])
        );
        assert_eq!(qp.state(), QpState::Error);
    }

    #[test]
    fn responder_sequencing() {
        let mut qp = QueuePair::new(Qpn(7), Psn::new(500), 1024, 16);
        qp.establish_responder(PeerInfo {
            ip: Ipv4Addr::new(10, 0, 0, 1),
            qpn: Qpn(3),
            start_psn: Psn::new(40),
        });
        assert_eq!(qp.state(), QpState::ReadyToReceive);
        assert_eq!(
            qp.receive_sequence(Psn::new(40), Opcode::WriteOnly, true),
            RecvVerdict::Execute { ack_due: true }
        );
        assert_eq!(qp.msn(), 1);
        // A gap.
        assert_eq!(
            qp.receive_sequence(Psn::new(42), Opcode::WriteOnly, true),
            RecvVerdict::OutOfOrder
        );
        // The expected one.
        assert_eq!(
            qp.receive_sequence(Psn::new(41), Opcode::WriteFirst, false),
            RecvVerdict::Execute { ack_due: false }
        );
        // A stale duplicate.
        assert_eq!(
            qp.receive_sequence(Psn::new(40), Opcode::WriteOnly, true),
            RecvVerdict::Duplicate
        );
        qp.promote_to_rts();
        assert_eq!(qp.state(), QpState::ReadyToSend);
    }

    #[test]
    fn read_request_is_single_packet_and_completes_as_read() {
        let mut qp = rts_qp(1024, 16);
        let mut mem = crate::memory::HostMemory::new(0);
        let region = mem.register(64, crate::types::Permissions::NONE);
        qp.post(WorkRequest::Read {
            wr_id: WrId(3),
            remote_va: 0x2000,
            rkey: RKey(7),
            len: 8,
            local_region: region,
            local_offset: 0,
        })
        .expect("rts");
        let pkts = qp.next_message(SimTime::ZERO).expect("ready");
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].opcode, Opcode::ReadRequest);
        let done = qp.handle_ack(pkts[0].psn, 16);
        assert_eq!(done, vec![(WrId(3), true)]);
    }
}
