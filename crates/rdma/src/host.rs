//! An RDMA-capable server: CPU + RNIC + registered memory, as one
//! [`netsim::Node`].
//!
//! The split of work mirrors real hardware, because that split *is* the
//! paper's result:
//!
//! * the **CPU** (one [`netsim::Cpu`]) runs the application ([`RdmaApp`])
//!   and is charged for every verb interaction — posting a work request,
//!   reaping a completion, handling a CM datagram;
//! * the **NIC** executes autonomously: it segments messages, clocks
//!   packets onto the link, and — crucially — executes *incoming* one-sided
//!   operations and generates ACKs without touching the CPU (§II-A). This
//!   is why Mu's replicas are idle on the data path and why the leader's
//!   CPU is the small-value bottleneck the paper measures.

use bytes::Bytes;
use netsim::{
    Context, Cpu, Frame, FxHashMap, MetricsRegistry, Node, PortId, RetransmitKind, SimDuration,
    SimTime, TimerToken, TraceEvent, Tracer,
};
use std::collections::{BTreeSet, VecDeque};
use std::net::Ipv4Addr;

use crate::cm::{CmMessage, RejectReason};
use crate::memory::{HostMemory, RegionHandle, RegionInfo};
use crate::opcode::Opcode;
use crate::qp::{
    PacketPlan, PeerInfo, QpState, QueuePair, RecoveryAction, RecvVerdict, WriteCursor,
};
use crate::types::{MacAddr, Permissions, Psn, Qpn, CM_QPN, DEFAULT_RDMA_MTU};
use crate::verbs::{Completion, CompletionStatus, WorkRequest, WrId};
use crate::wire::{
    Aeth, AethKind, Bth, NakCode, PacketTemplate, PayloadCrcCache, RewriteSet, RocePacket,
};

/// Tunable parameters of a host. Defaults are the calibration constants
/// derived from the paper (DESIGN.md §2).
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// This host's IPv4 address (MAC is derived from it).
    pub ip: Ipv4Addr,
    /// RDMA path MTU: payload bytes per packet of a multi-packet message.
    pub mtu: usize,
    /// Local cap on unacknowledged messages per queue pair (16 in the
    /// paper's testbed, §IV-C).
    pub max_inflight: usize,
    /// CPU cost of posting one work request (≈210 ns reproduces the
    /// paper's §V-C rates).
    pub post_cost: SimDuration,
    /// CPU cost of reaping one completion.
    pub reap_cost: SimDuration,
    /// CPU cost of handling one connection-management datagram (slow
    /// path).
    pub cm_cost: SimDuration,
    /// NIC transmit engine occupancy per packet.
    pub nic_tx_cost: SimDuration,
    /// NIC receive engine occupancy per packet. Raise it to model a slow
    /// replica whose credit count should drag the group minimum down.
    pub nic_rx_cost: SimDuration,
    /// Receive buffer capacity in requests; the advertised credit count is
    /// `rx_capacity - occupancy` (§II-A, "Congestion").
    pub rx_capacity: usize,
    /// Transport retransmission timeout (131 µs in the paper's setup:
    /// `4.096 × 2⁵ µs`, §V-E).
    pub retransmit_timeout: SimDuration,
    /// Retransmissions before the QP gives up and flushes.
    pub retry_limit: u32,
    /// Seed for key/PSN generation (distinct per host).
    pub seed: u64,
    /// Trace sink for NIC-level events (WQE posts, wire transmissions,
    /// ACK/NAK traffic, retransmissions). Disabled by default; the only
    /// cost then is one `Option` branch per would-be event.
    pub tracer: Tracer,
}

impl HostConfig {
    /// A host with the calibration defaults at address `ip`.
    pub fn new(ip: Ipv4Addr) -> Self {
        let o = ip.octets();
        HostConfig {
            ip,
            mtu: DEFAULT_RDMA_MTU,
            max_inflight: 16,
            post_cost: SimDuration::from_nanos(210),
            reap_cost: SimDuration::from_nanos(210),
            cm_cost: SimDuration::from_micros(25),
            nic_tx_cost: SimDuration::from_nanos(5),
            nic_rx_cost: SimDuration::from_nanos(8),
            rx_capacity: 16,
            retransmit_timeout: SimDuration::from_micros(131),
            retry_limit: 7,
            seed: u64::from(u32::from_be_bytes(o)),
            tracer: Tracer::disabled(),
        }
    }
}

/// Connection-management events delivered to the application.
#[derive(Debug, Clone)]
pub enum CmEvent {
    /// A peer asked to connect; answer with [`HostOps::accept`] or
    /// [`HostOps::reject`].
    ConnectRequestReceived {
        /// Handshake correlation id (pass to accept/reject).
        handshake_id: u64,
        /// The requesting peer.
        from_ip: Ipv4Addr,
        /// The requester's queue pair.
        from_qpn: Qpn,
        /// The requester's initial PSN.
        start_psn: Psn,
        /// Piggybacked application data.
        private_data: Bytes,
    },
    /// (Initiator) the connection is established and ready to send on.
    Connected {
        /// Handshake correlation id.
        handshake_id: u64,
        /// The local queue pair now in RTS.
        qpn: Qpn,
        /// The peer's address.
        peer_ip: Ipv4Addr,
        /// Private data from the ConnectReply (e.g. a region advert).
        private_data: Bytes,
    },
    /// (Responder) the initiator sent ReadyToUse; the connection is live.
    Established {
        /// Handshake correlation id.
        handshake_id: u64,
        /// The local queue pair now in RTS.
        qpn: Qpn,
        /// The peer's address.
        peer_ip: Ipv4Addr,
    },
    /// (Initiator) the responder refused.
    Rejected {
        /// Handshake correlation id.
        handshake_id: u64,
        /// Why.
        reason: RejectReason,
    },
}

/// The application half of a host: protocol logic driven by completions,
/// CM events and timers. Mu's and P4CE's replicas and leaders implement
/// this.
pub trait RdmaApp: 'static {
    /// Called once at simulation start.
    fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
        let _ = ops;
    }

    /// A work request finished (successfully or not).
    fn on_completion(&mut self, completion: Completion, ops: &mut HostOps<'_, '_>);

    /// A connection-management event arrived.
    fn on_cm_event(&mut self, event: CmEvent, ops: &mut HostOps<'_, '_>) {
        let _ = (event, ops);
    }

    /// A remote peer wrote into a watched region (see
    /// [`HostOps::watch_region`]). Offsets are region-relative. `payload`
    /// is the written bytes as a zero-copy slice of the received frame —
    /// the same bytes `ops.read_local(region, offset, len)` would return,
    /// without touching the region buffer.
    fn on_remote_write(
        &mut self,
        region: RegionHandle,
        offset: u64,
        payload: &Bytes,
        ops: &mut HostOps<'_, '_>,
    ) {
        let _ = (region, offset, payload, ops);
    }

    /// An application timer armed with [`HostOps::set_app_timer`] fired.
    fn on_timer(&mut self, token: u64, ops: &mut HostOps<'_, '_>) {
        let _ = (token, ops);
    }

    /// A negative acknowledgement arrived on `qpn` (delivered *before*
    /// the transport's own recovery runs). P4CE's leader uses this to
    /// revert to un-accelerated communication (§III-A).
    fn on_nak(&mut self, qpn: Qpn, code: NakCode, ops: &mut HostOps<'_, '_>) {
        let _ = (qpn, code, ops);
    }
}

// Timer token classes (top byte of the token).
const TK_NIC_TX: u64 = 1 << 56;
const TK_DELIVER: u64 = 2 << 56;
const TK_RETRANSMIT: u64 = 3 << 56;
const TK_APP: u64 = 4 << 56;
const TK_POST: u64 = 5 << 56;
const TK_RX: u64 = 6 << 56;
const TK_CLASS_MASK: u64 = 0xff << 56;
const TK_DATA_MASK: u64 = !TK_CLASS_MASK;

#[derive(Debug)]
enum Delivery {
    Completion(Completion),
    Cm(CmEvent),
    RemoteWrite {
        region: RegionHandle,
        offset: u64,
        payload: Bytes,
    },
    Nak {
        qpn: Qpn,
        code: NakCode,
    },
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
/// Counters exposed for tests and experiment reporting.
pub struct HostStats {
    /// Request packets transmitted (writes, reads, CM).
    pub packets_sent: u64,
    /// Packets received and parsed.
    pub packets_received: u64,
    /// Frames that failed to parse and were dropped.
    pub parse_drops: u64,
    /// ACKs generated by the NIC.
    pub acks_sent: u64,
    /// NAKs generated by the NIC.
    pub naks_sent: u64,
    /// Retransmitted packets.
    pub retransmits: u64,
    /// Retransmitted packets triggered by the retransmission timer
    /// ([`QueuePair::check_timeout`]) — the lost-ACK / lost-tail path.
    pub timeout_retransmits: u64,
    /// Retransmitted packets triggered by a peer NAK
    /// ([`QueuePair::handle_nak`]) — the mid-stream-gap path.
    pub nak_retransmits: u64,
    /// Request packets dropped because the receive buffer was full (the
    /// damage ignoring credit counts causes).
    pub rx_overflow_drops: u64,
    /// ACK/NAK frames emitted by patching the per-QP template (the fast
    /// path: PSN/MSN/syndrome rewrites over cached bytes).
    pub acks_templated: u64,
    /// ACK/NAK frames built by full serialization (first ACK on a QP, or
    /// a structural change that invalidated the template).
    pub acks_serialized: u64,
    /// Remote-write payloads delivered to the app as zero-copy slices of
    /// the received frame.
    pub rx_zero_copy_deliveries: u64,
    /// Payload deliveries that required copying into host memory (read
    /// responses landing in a local region).
    pub rx_copied_deliveries: u64,
}

impl HostStats {
    /// Snapshots every counter into `reg` under `prefix` with the unified
    /// dotted naming scheme (`{prefix}.tx.packets`,
    /// `{prefix}.retransmit.timeout`, …). The two transport recovery
    /// paths — timer-driven go-back-N and NAK-driven go-back-N — land in
    /// *distinct* metrics so reports can tell a lost-tail from a
    /// mid-stream gap.
    pub fn register_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.tx.packets"), self.packets_sent);
        reg.set_counter(&format!("{prefix}.rx.packets"), self.packets_received);
        reg.set_counter(&format!("{prefix}.rx.parse_drops"), self.parse_drops);
        reg.set_counter(
            &format!("{prefix}.rx.overflow_drops"),
            self.rx_overflow_drops,
        );
        reg.set_counter(&format!("{prefix}.ack.sent"), self.acks_sent);
        reg.set_counter(&format!("{prefix}.nak.sent"), self.naks_sent);
        reg.set_counter(&format!("{prefix}.retransmit.packets"), self.retransmits);
        reg.set_counter(
            &format!("{prefix}.retransmit.timeout"),
            self.timeout_retransmits,
        );
        reg.set_counter(&format!("{prefix}.retransmit.nak"), self.nak_retransmits);
        reg.set_counter(&format!("{prefix}.ack.templated"), self.acks_templated);
        reg.set_counter(&format!("{prefix}.ack.serialized"), self.acks_serialized);
        reg.set_counter(
            &format!("{prefix}.rx.zero_copy_deliveries"),
            self.rx_zero_copy_deliveries,
        );
        reg.set_counter(
            &format!("{prefix}.rx.copied_deliveries"),
            self.rx_copied_deliveries,
        );
    }
}

/// The non-application state of a host (NIC, CPU, memory, queue pairs).
pub struct HostCore {
    cfg: HostConfig,
    mac: MacAddr,
    cpu: Cpu,
    mem: HostMemory,
    qps: FxHashMap<u32, QueuePair>,
    /// QPNs in ascending order — the deterministic iteration order for
    /// whole-table sweeps (retransmit scan); point lookups go through the
    /// hash map.
    qp_order: Vec<u32>,
    next_qpn: u32,
    psn_state: u64,
    // --- transmit path ---
    tx_fifo: VecDeque<(PortId, Frame)>,
    tx_staged: Option<(PortId, Frame)>,
    tx_last_served: u32,
    /// QPNs that may have untransmitted posted work: every successful
    /// [`QueuePair::post`] inserts, [`HostCore::refill_tx`] removes
    /// entries it observes drained. A superset of the truly-ready set
    /// (window-closed QPs stay in it), so the round-robin scan touches
    /// only senders instead of every connection on the host.
    tx_ready: BTreeSet<u32>,
    /// Scratch for stale `tx_ready` entries found mid-scan.
    tx_stale: Vec<u32>,
    /// Scratch for completed work requests drained from an ACK.
    ack_done: Vec<(WrId, bool)>,
    /// The port new connections ride on (multi-homed hosts flip this to a
    /// backup path when the primary fabric dies, §V-E "Crashed switch").
    active_port: PortId,
    /// Per-queue-pair egress port: a connection is bound to the path it
    /// was established (or last reached) over.
    qp_ports: FxHashMap<u32, PortId>,
    // --- receive path ---
    rx_queue: VecDeque<(PortId, Frame, bool)>,
    rx_busy: bool,
    /// Request packets (writes/reads/sends) currently buffered: the
    /// resource the credit count advertises. ACKs and read responses do
    /// not consume it.
    rx_request_backlog: usize,
    // --- handshakes (value includes the port the exchange rides on) ---
    next_handshake: u64,
    initiated: FxHashMap<u64, Qpn>,
    responding: FxHashMap<u64, Qpn>,
    /// Arrival port of pending incoming ConnectRequests.
    request_ports: FxHashMap<u64, PortId>,
    // --- deliveries to the app ---
    deliveries: FxHashMap<u64, Delivery>,
    next_delivery: u64,
    // --- read landing zones ---
    read_landing: FxHashMap<(u32, u64), (RegionHandle, usize)>,
    // --- watched regions (remote-write notification), rkey -> region ---
    watch_keys: FxHashMap<u32, RegionHandle>,
    // --- retransmission ---
    rt_tick_armed: bool,
    // --- payload CRC memos (TX serialization / RX ICRC verification) ---
    tx_payload_crcs: PayloadCrcCache,
    rx_payload_crcs: PayloadCrcCache,
    /// Counters.
    pub stats: HostStats,
}

impl HostCore {
    fn new(cfg: HostConfig) -> Self {
        let mac = MacAddr::for_ip(cfg.ip);
        let mem = HostMemory::new(cfg.seed);
        HostCore {
            mac,
            cpu: Cpu::new(),
            mem,
            qps: FxHashMap::default(),
            qp_order: Vec::new(),
            next_qpn: 0x10,
            psn_state: cfg.seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1,
            tx_fifo: VecDeque::new(),
            tx_staged: None,
            tx_last_served: 0,
            tx_ready: BTreeSet::new(),
            tx_stale: Vec::new(),
            ack_done: Vec::new(),
            active_port: PortId::FIRST,
            qp_ports: FxHashMap::default(),
            rx_queue: VecDeque::new(),
            rx_busy: false,
            rx_request_backlog: 0,
            next_handshake: 1,
            initiated: FxHashMap::default(),
            responding: FxHashMap::default(),
            request_ports: FxHashMap::default(),
            deliveries: FxHashMap::default(),
            next_delivery: 0,
            read_landing: FxHashMap::default(),
            watch_keys: FxHashMap::default(),
            rt_tick_armed: false,
            tx_payload_crcs: PayloadCrcCache::new(),
            rx_payload_crcs: PayloadCrcCache::new(),
            stats: HostStats::default(),
            cfg,
        }
    }

    fn next_start_psn(&mut self) -> Psn {
        self.psn_state = self
            .psn_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        Psn::new((self.psn_state >> 40) as u32)
    }

    fn alloc_qpn(&mut self) -> Qpn {
        let q = Qpn(self.next_qpn);
        self.next_qpn += 1;
        q
    }

    fn insert_qp(&mut self, qpn: u32, qp: QueuePair) {
        if self.qps.insert(qpn, qp).is_none() {
            let at = self.qp_order.partition_point(|&q| q < qpn);
            self.qp_order.insert(at, qpn);
        }
    }

    fn remove_qp(&mut self, qpn: u32) -> Option<QueuePair> {
        let removed = self.qps.remove(&qpn);
        if removed.is_some() {
            if let Ok(at) = self.qp_order.binary_search(&qpn) {
                self.qp_order.remove(at);
            }
            self.tx_ready.remove(&qpn);
        }
        removed
    }

    /// The advertised credit count: free request-buffer slots, clamped to
    /// the 5-bit AETH field.
    fn credits(&self) -> u8 {
        self.cfg
            .rx_capacity
            .saturating_sub(self.rx_request_backlog)
            .min(31) as u8
    }

    fn qp_port(&self, qpn: Qpn) -> PortId {
        self.qp_ports
            .get(&qpn.masked())
            .copied()
            .unwrap_or(self.active_port)
    }

    fn build_frame(&mut self, qpn: Qpn, plan: &PacketPlan) -> Frame {
        let peer = self.qps[&qpn.masked()]
            .peer()
            .expect("building frame on unconnected QP");
        RocePacket {
            src_mac: self.mac,
            dst_mac: MacAddr::for_ip(peer.ip),
            src_ip: self.cfg.ip,
            dst_ip: peer.ip,
            udp_src_port: 0xC000 | (qpn.masked() as u16 & 0x0fff),
            bth: Bth {
                opcode: plan.opcode,
                dest_qp: peer.qpn,
                psn: plan.psn,
                ack_req: plan.ack_req,
            },
            reth: plan.reth,
            aeth: None,
            payload: plan.payload.clone(),
        }
        // Retransmits and multi-replica fan-out re-serialize the same
        // payload allocation; the cache turns those repeat hashes into a
        // header-sized CRC plus a GF(2) shift.
        .to_frame_cached(&mut self.tx_payload_crcs)
    }

    fn build_cm_frame(&self, to_ip: Ipv4Addr, msg: &CmMessage) -> Frame {
        RocePacket {
            src_mac: self.mac,
            dst_mac: MacAddr::for_ip(to_ip),
            src_ip: self.cfg.ip,
            dst_ip: to_ip,
            udp_src_port: 0xC000,
            bth: Bth {
                opcode: Opcode::SendOnly,
                dest_qp: CM_QPN,
                psn: Psn::new(0),
                ack_req: false,
            },
            reth: None,
            aeth: None,
            payload: msg.encode(),
        }
        .to_frame()
    }

    fn build_response(
        &self,
        to: &RocePacket,
        qp: &QueuePair,
        opcode: Opcode,
        aeth: Aeth,
        payload: Bytes,
    ) -> Frame {
        // Responses go to the connection peer (which, behind a P4CE
        // switch, is the switch itself — the Aggr queue pair of §IV-A).
        let peer = qp.peer().expect("responding on unconnected QP");
        RocePacket {
            src_mac: self.mac,
            dst_mac: MacAddr::for_ip(to.src_ip),
            src_ip: self.cfg.ip,
            dst_ip: to.src_ip,
            udp_src_port: 0xC000 | (qp.qpn().masked() as u16 & 0x0fff),
            bth: Bth {
                opcode,
                dest_qp: peer.qpn,
                psn: to.bth.psn,
                ack_req: false,
            },
            reth: None,
            aeth: Some(aeth),
            payload,
        }
        .to_frame()
    }

    /// Builds an ACK/NAK frame for `qpn` towards `dst_ip`. The first one
    /// per QP serializes in full and seeds a [`PacketTemplate`]; every
    /// later one differs only in destination, PSN and AETH — all
    /// patchable header fields — so it is stamped from the template with
    /// a header-sized CRC instead of a full-frame hash.
    fn build_ack_frame(&mut self, qpn: Qpn, dst_ip: Ipv4Addr, psn: Psn, aeth: Aeth) -> Frame {
        let qp = self.qps.get(&qpn.masked()).expect("checked");
        if let Some(t) = qp.ack_template() {
            // Build the rewrite set directly against the template's base
            // packet instead of cloning it and diffing — only the fields
            // that actually moved are patched.
            let base = t.packet();
            let mut rw = RewriteSet::default();
            if base.dst_ip != dst_ip {
                rw.dst_mac = Some(MacAddr::for_ip(dst_ip));
                rw.dst_ip = Some(dst_ip);
            }
            if base.bth.psn != psn {
                rw.psn = Some(psn);
            }
            if base.aeth != Some(aeth) {
                rw.aeth = Some(aeth);
            }
            if let Ok(frame) = t.stamp(&rw) {
                self.stats.acks_templated += 1;
                return frame;
            }
        }
        let peer = qp.peer().expect("responding on unconnected QP");
        let pkt = RocePacket {
            src_mac: self.mac,
            dst_mac: MacAddr::for_ip(dst_ip),
            src_ip: self.cfg.ip,
            dst_ip,
            udp_src_port: 0xC000 | (qpn.masked() as u16 & 0x0fff),
            bth: Bth {
                opcode: Opcode::Acknowledge,
                dest_qp: peer.qpn,
                psn,
                ack_req: false,
            },
            reth: None,
            aeth: Some(aeth),
            payload: Bytes::new(),
        };
        let template = PacketTemplate::from_packet(&pkt);
        let frame = template.frame().clone();
        self.stats.acks_serialized += 1;
        self.qps
            .get_mut(&qpn.masked())
            .expect("checked")
            .set_ack_template(template);
        frame
    }

    fn kick_tx(&mut self, ctx: &mut Context<'_>) {
        if self.tx_staged.is_some() {
            return;
        }
        if self.tx_fifo.is_empty() {
            self.refill_tx(ctx.now);
        }
        if let Some(entry) = self.tx_fifo.pop_front() {
            self.tx_staged = Some(entry);
            ctx.schedule(self.cfg.nic_tx_cost, TimerToken(TK_NIC_TX));
        }
    }

    /// Pulls the next ready message from the queue pairs, round-robin over
    /// QPNs for fairness, and stages its packets for transmission.
    ///
    /// Only QPNs in [`HostCore::tx_ready`] are visited — a QP absent from
    /// the set has nothing posted, so `next_message` would decline it
    /// anyway; skipping it changes nothing but the scan cost. Entries
    /// observed drained (pending queue empty) are dropped from the set.
    fn refill_tx(&mut self, now: SimTime) {
        // Round-robin from the QPN after the last served one, wrapping —
        // two ordered range walks over the candidate set.
        let last = self.tx_last_served;
        let scan = |tx_ready: &BTreeSet<u32>,
                    qps: &mut FxHashMap<u32, QueuePair>,
                    tx_stale: &mut Vec<u32>|
         -> Option<(u32, Vec<PacketPlan>)> {
            for &qpn in tx_ready.range(last + 1..).chain(tx_ready.range(..=last)) {
                let qp = qps.get_mut(&qpn).expect("tx_ready tracks live QPs");
                if qp.pending_len() == 0 {
                    tx_stale.push(qpn);
                    continue;
                }
                if let Some(packets) = qp.next_message(now) {
                    return Some((qpn, packets));
                }
            }
            None
        };
        let ready = scan(&self.tx_ready, &mut self.qps, &mut self.tx_stale);
        for qpn in self.tx_stale.drain(..) {
            self.tx_ready.remove(&qpn);
        }
        let Some((qpn, packets)) = ready else { return };
        if self.qps[&qpn].pending_len() == 0 {
            self.tx_ready.remove(&qpn);
        }
        if let Some((wr_id, first_psn, _)) = self.qps[&qpn].newest_inflight() {
            self.cfg.tracer.emit(now, || TraceEvent::WireTx {
                qpn: u64::from(qpn),
                wr_id: wr_id.0,
                psn: u64::from(first_psn.value()),
                npkts: packets.len() as u64,
            });
        }
        self.tx_last_served = qpn;
        let port = self.qp_port(Qpn(qpn));
        for p in &packets {
            let f = self.build_frame(Qpn(qpn), p);
            self.tx_fifo.push_back((port, f));
        }
    }

    fn any_inflight(&self) -> bool {
        self.qps.values().any(|qp| qp.inflight_len() > 0)
    }

    fn enqueue_delivery(&mut self, delivery: Delivery, cost: SimDuration, ctx: &mut Context<'_>) {
        let id = self.next_delivery;
        self.next_delivery = (self.next_delivery + 1) & TK_DATA_MASK;
        self.deliveries.insert(id, delivery);
        let ready_at = self.cpu.run(ctx.now, cost);
        ctx.schedule_at(ready_at, TimerToken(TK_DELIVER | id));
    }

    fn complete(&mut self, c: Completion, ctx: &mut Context<'_>) {
        let cost = self.cfg.reap_cost;
        self.enqueue_delivery(Delivery::Completion(c), cost, ctx);
    }

    fn deliver_cm(&mut self, ev: CmEvent, ctx: &mut Context<'_>) {
        let cost = self.cfg.cm_cost;
        self.enqueue_delivery(Delivery::Cm(ev), cost, ctx);
    }

    fn retransmit(&mut self, qpn: Qpn, packets: Vec<PacketPlan>) {
        self.stats.retransmits += packets.len() as u64;
        let port = self.qp_port(qpn);
        for p in &packets {
            let f = self.build_frame(qpn, p);
            self.tx_fifo.push_back((port, f));
        }
    }

    // --------------------------------------------------------------
    // Receive-side packet processing (runs in the NIC, no CPU charge)
    // --------------------------------------------------------------

    fn process_packet(&mut self, port: PortId, frame: Frame, ctx: &mut Context<'_>) {
        // Borrowed header-view parse: acceptance checks run in full, but
        // no owned packet is materialized until a path needs one. ACKs —
        // half of all traffic — never materialize at all.
        let view = match RocePacket::parse_view_cached(&frame, &mut self.rx_payload_crcs) {
            Ok(v) => v,
            Err(_) => {
                self.stats.parse_drops += 1;
                return;
            }
        };
        self.stats.packets_received += 1;
        let dest_qp = view.dest_qp();
        if dest_qp == CM_QPN {
            let src_ip = view.src_ip();
            let payload = view.payload();
            self.process_cm(src_ip, &payload, port, ctx);
            return;
        }
        if !self.qps.contains_key(&dest_qp.masked()) {
            return; // no such QP: drop silently (as NICs do for unknown QPNs)
        }
        // Path affinity: a connection follows the path its traffic
        // arrives on.
        self.qp_ports.insert(dest_qp.masked(), port);
        let opcode = view.opcode();
        if opcode.is_write() || opcode == Opcode::ReadRequest {
            let pkt = view.to_packet();
            self.process_request(pkt, ctx);
        } else if opcode == Opcode::Acknowledge {
            let psn = view.psn();
            let aeth = view.aeth().expect("ACK carries AETH");
            self.process_ack(dest_qp, psn, aeth, ctx);
        } else if opcode == Opcode::ReadResponseOnly {
            let psn = view.psn();
            let aeth = view.aeth().expect("read response carries AETH");
            let payload = view.payload();
            self.process_read_response(dest_qp, psn, aeth, payload, ctx);
        }
    }

    fn process_request(&mut self, pkt: RocePacket, ctx: &mut Context<'_>) {
        let qpn = pkt.bth.dest_qp;
        let qp = self.qps.get_mut(&qpn.masked()).expect("checked");
        if !matches!(qp.state(), QpState::ReadyToReceive | QpState::ReadyToSend) {
            return;
        }
        let verdict = qp.receive_sequence(pkt.bth.psn, pkt.bth.opcode, pkt.bth.ack_req);
        match verdict {
            RecvVerdict::Duplicate => {
                let credits = self.credits();
                let msn = self.qps[&qpn.masked()].msn();
                let frame = self.build_ack_frame(
                    qpn,
                    pkt.src_ip,
                    pkt.bth.psn,
                    Aeth {
                        kind: AethKind::Ack { credits },
                        msn,
                    },
                );
                self.stats.acks_sent += 1;
                self.cfg.tracer.emit(ctx.now, || TraceEvent::AckTx {
                    qpn: u64::from(qpn.masked()),
                    psn: u64::from(pkt.bth.psn.value()),
                });
                let port = self.qp_port(qpn);
                self.tx_fifo.push_back((port, frame));
                self.kick_tx(ctx);
            }
            RecvVerdict::OutOfOrder => {
                self.send_nak(qpn, pkt.src_ip, pkt.bth.psn, NakCode::PsnSequenceError, ctx);
            }
            RecvVerdict::Execute { ack_due } => {
                if pkt.bth.opcode == Opcode::ReadRequest {
                    self.execute_read(pkt, qpn, ctx);
                } else {
                    self.execute_write(pkt, qpn, ack_due, ctx);
                }
            }
        }
    }

    fn execute_write(&mut self, pkt: RocePacket, qpn: Qpn, ack_due: bool, ctx: &mut Context<'_>) {
        let qp = self.qps.get_mut(&qpn.masked()).expect("checked");
        // Resolve the landing address: from the RETH on first/only
        // packets, from the cursor on middle/last.
        let (va, rkey) = match (pkt.reth, qp.write_cursor()) {
            (Some(reth), _) => (reth.va, reth.rkey),
            (None, Some(cursor)) => (cursor.va, cursor.rkey),
            (None, None) => {
                self.send_nak(qpn, pkt.src_ip, pkt.bth.psn, NakCode::InvalidRequest, ctx);
                return;
            }
        };
        // Maintain the cursor for subsequent packets of this message.
        match pkt.bth.opcode {
            Opcode::WriteFirst => {
                let total = pkt.reth.expect("first carries RETH").dma_len as u64;
                qp.set_write_cursor(Some(WriteCursor {
                    va: va + pkt.payload.len() as u64,
                    rkey,
                    remaining: total - pkt.payload.len() as u64,
                }));
            }
            Opcode::WriteMiddle => {
                qp.set_write_cursor(Some(WriteCursor {
                    va: va + pkt.payload.len() as u64,
                    rkey,
                    remaining: qp
                        .write_cursor()
                        .map(|c| c.remaining.saturating_sub(pkt.payload.len() as u64))
                        .unwrap_or(0),
                }));
            }
            Opcode::WriteLast | Opcode::WriteOnly => {
                qp.set_write_cursor(None);
            }
            _ => {}
        }
        let result = self
            .mem
            .remote_write(pkt.src_ip, qpn, rkey, va, &pkt.payload);
        match result {
            Ok((region, offset)) => {
                if self.watch_keys.contains_key(&rkey.0) {
                    // Deliver the written bytes as a zero-copy slice of
                    // the received frame — no fresh Vec per delivery.
                    let ev = Delivery::RemoteWrite {
                        region,
                        offset,
                        payload: pkt.payload.clone(),
                    };
                    self.stats.rx_zero_copy_deliveries += 1;
                    let cost = self.cfg.reap_cost;
                    self.enqueue_delivery(ev, cost, ctx);
                }
                if ack_due {
                    let credits = self.credits();
                    let msn = self.qps[&qpn.masked()].msn();
                    let frame = self.build_ack_frame(
                        qpn,
                        pkt.src_ip,
                        pkt.bth.psn,
                        Aeth {
                            kind: AethKind::Ack { credits },
                            msn,
                        },
                    );
                    self.stats.acks_sent += 1;
                    self.cfg.tracer.emit(ctx.now, || TraceEvent::AckTx {
                        qpn: u64::from(qpn.masked()),
                        psn: u64::from(pkt.bth.psn.value()),
                    });
                    let port = self.qp_port(qpn);
                    self.tx_fifo.push_back((port, frame));
                    self.kick_tx(ctx);
                }
            }
            Err(_) => {
                self.send_nak(
                    qpn,
                    pkt.src_ip,
                    pkt.bth.psn,
                    NakCode::RemoteAccessError,
                    ctx,
                );
            }
        }
    }

    fn execute_read(&mut self, pkt: RocePacket, qpn: Qpn, ctx: &mut Context<'_>) {
        let reth = pkt.reth.expect("read request carries RETH");
        match self
            .mem
            .remote_read(pkt.src_ip, reth.rkey, reth.va, u64::from(reth.dma_len))
        {
            Ok(data) => {
                let credits = self.credits();
                let msn = self.qps[&qpn.masked()].msn();
                let frame = self.build_response(
                    &pkt,
                    &self.qps[&qpn.masked()],
                    Opcode::ReadResponseOnly,
                    Aeth {
                        kind: AethKind::Ack { credits },
                        msn,
                    },
                    data,
                );
                self.stats.acks_sent += 1;
                self.cfg.tracer.emit(ctx.now, || TraceEvent::AckTx {
                    qpn: u64::from(qpn.masked()),
                    psn: u64::from(pkt.bth.psn.value()),
                });
                let port = self.qp_port(qpn);
                self.tx_fifo.push_back((port, frame));
                self.kick_tx(ctx);
            }
            Err(_) => self.send_nak(
                qpn,
                pkt.src_ip,
                pkt.bth.psn,
                NakCode::RemoteAccessError,
                ctx,
            ),
        }
    }

    fn send_nak(
        &mut self,
        qpn: Qpn,
        dst_ip: Ipv4Addr,
        psn: Psn,
        code: NakCode,
        ctx: &mut Context<'_>,
    ) {
        let msn = self.qps[&qpn.masked()].msn();
        let frame = self.build_ack_frame(
            qpn,
            dst_ip,
            psn,
            Aeth {
                kind: AethKind::Nak(code),
                msn,
            },
        );
        self.stats.naks_sent += 1;
        self.cfg.tracer.emit(ctx.now, || TraceEvent::NakTx {
            qpn: u64::from(qpn.masked()),
            psn: u64::from(psn.value()),
        });
        let port = self.qp_port(qpn);
        self.tx_fifo.push_back((port, frame));
        self.kick_tx(ctx);
    }

    fn process_ack(&mut self, qpn: Qpn, psn: Psn, aeth: Aeth, ctx: &mut Context<'_>) {
        match aeth.kind {
            AethKind::Ack { credits } => {
                self.cfg.tracer.emit(ctx.now, || TraceEvent::AckRx {
                    qpn: u64::from(qpn.masked()),
                    psn: u64::from(psn.value()),
                    credits: u64::from(credits),
                });
                let mut done = std::mem::take(&mut self.ack_done);
                let qp = self.qps.get_mut(&qpn.masked()).expect("checked");
                qp.handle_ack_into(psn, credits, &mut done);
                if done.is_empty() {
                    qp.note_progress(psn, ctx.now);
                }
                for &(wr_id, _is_read) in &done {
                    self.complete(
                        Completion {
                            qpn,
                            wr_id,
                            status: CompletionStatus::Success,
                            credits,
                        },
                        ctx,
                    );
                }
                self.ack_done = done;
                self.kick_tx(ctx); // the window may have reopened
            }
            AethKind::Nak(code) => {
                self.cfg.tracer.emit(ctx.now, || TraceEvent::NakRx {
                    qpn: u64::from(qpn.masked()),
                    psn: u64::from(psn.value()),
                });
                // Surface the NAK to the application (P4CE's fallback
                // trigger) in parallel with transport-level recovery.
                let cost = self.cfg.reap_cost;
                self.enqueue_delivery(Delivery::Nak { qpn, code }, cost, ctx);
                let qp = self.qps.get_mut(&qpn.masked()).expect("checked");
                match qp.handle_nak(code) {
                    RecoveryAction::None => {}
                    RecoveryAction::Retransmit(pkts) => {
                        self.stats.nak_retransmits += pkts.len() as u64;
                        self.cfg.tracer.emit(ctx.now, || TraceEvent::Retransmit {
                            qpn: u64::from(qpn.masked()),
                            kind: RetransmitKind::Nak,
                            packets: pkts.len() as u64,
                        });
                        self.retransmit(qpn, pkts);
                        self.kick_tx(ctx);
                    }
                    RecoveryAction::Fatal(ids) => {
                        for (i, wr_id) in ids.into_iter().enumerate() {
                            let status = if i == 0 {
                                CompletionStatus::RemoteError(code)
                            } else {
                                CompletionStatus::Flushed
                            };
                            self.complete(
                                Completion {
                                    qpn,
                                    wr_id,
                                    status,
                                    credits: 0,
                                },
                                ctx,
                            );
                        }
                    }
                }
            }
        }
    }

    fn process_read_response(
        &mut self,
        qpn: Qpn,
        psn: Psn,
        aeth: Aeth,
        payload: Bytes,
        ctx: &mut Context<'_>,
    ) {
        let AethKind::Ack { credits } = aeth.kind else {
            return;
        };
        let qp = self.qps.get_mut(&qpn.masked()).expect("checked");
        let done = qp.handle_ack(psn, credits);
        for (wr_id, is_read) in done {
            if is_read {
                if let Some((region, offset)) = self.read_landing.remove(&(qpn.masked(), wr_id.0)) {
                    // Read data must land in the caller's region buffer —
                    // the one delivery that is inherently a copy.
                    self.mem.write_local(region, offset, &payload);
                    self.stats.rx_copied_deliveries += 1;
                }
            }
            self.complete(
                Completion {
                    qpn,
                    wr_id,
                    status: CompletionStatus::Success,
                    credits,
                },
                ctx,
            );
        }
        self.kick_tx(ctx);
    }

    fn process_cm(
        &mut self,
        src_ip: Ipv4Addr,
        payload: &Bytes,
        port: PortId,
        ctx: &mut Context<'_>,
    ) {
        let Ok(msg) = CmMessage::decode(payload) else {
            self.stats.parse_drops += 1;
            return;
        };
        match msg {
            CmMessage::ConnectRequest {
                handshake_id,
                qpn,
                start_psn,
                private_data,
            } => {
                self.request_ports.insert(handshake_id, port);
                self.deliver_cm(
                    CmEvent::ConnectRequestReceived {
                        handshake_id,
                        from_ip: src_ip,
                        from_qpn: qpn,
                        start_psn,
                        private_data,
                    },
                    ctx,
                );
            }
            CmMessage::ConnectReply {
                handshake_id,
                qpn: remote_qpn,
                start_psn,
                private_data,
            } => {
                let Some(local_qpn) = self.initiated.remove(&handshake_id) else {
                    return; // unknown or duplicate reply
                };
                let peer = PeerInfo {
                    ip: src_ip,
                    qpn: remote_qpn,
                    start_psn,
                };
                if let Some(qp) = self.qps.get_mut(&local_qpn.masked()) {
                    qp.establish_requester(peer);
                }
                self.qp_ports.insert(local_qpn.masked(), port);
                let rtu = CmMessage::ReadyToUse { handshake_id };
                let frame = self.build_cm_frame(src_ip, &rtu);
                self.tx_fifo.push_back((port, frame));
                self.kick_tx(ctx);
                self.deliver_cm(
                    CmEvent::Connected {
                        handshake_id,
                        qpn: local_qpn,
                        peer_ip: src_ip,
                        private_data,
                    },
                    ctx,
                );
            }
            CmMessage::ReadyToUse { handshake_id } => {
                if let Some(local_qpn) = self.responding.remove(&handshake_id) {
                    if let Some(qp) = self.qps.get_mut(&local_qpn.masked()) {
                        qp.promote_to_rts();
                    }
                    self.deliver_cm(
                        CmEvent::Established {
                            handshake_id,
                            qpn: local_qpn,
                            peer_ip: src_ip,
                        },
                        ctx,
                    );
                }
            }
            CmMessage::ConnectReject {
                handshake_id,
                reason,
            } => {
                if let Some(local_qpn) = self.initiated.remove(&handshake_id) {
                    self.remove_qp(local_qpn.masked());
                    self.deliver_cm(
                        CmEvent::Rejected {
                            handshake_id,
                            reason,
                        },
                        ctx,
                    );
                }
            }
        }
    }
}

/// The operations an [`RdmaApp`] may perform from its callbacks.
pub struct HostOps<'a, 'c> {
    core: &'a mut HostCore,
    ctx: &'a mut Context<'c>,
}

impl HostOps<'_, '_> {
    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.ctx.now
    }

    /// This host's IP address.
    pub fn ip(&self) -> Ipv4Addr {
        self.core.cfg.ip
    }

    /// This host's configuration.
    pub fn config(&self) -> &HostConfig {
        &self.core.cfg
    }

    /// The host's trace sink. Applications emit their protocol-level
    /// events (propose, decide, view change) through this so they share
    /// the NIC's node label — span assembly correlates the two by
    /// `(node, qpn, wr_id)`.
    pub fn tracer(&self) -> &Tracer {
        &self.core.cfg.tracer
    }

    /// Counters.
    pub fn stats(&self) -> HostStats {
        self.core.stats
    }

    /// Registers a memory region (see [`HostMemory::register`]).
    pub fn register_region(&mut self, len: usize, perms: Permissions) -> RegionHandle {
        self.core.mem.register(len, perms)
    }

    /// Public identity of a region.
    pub fn region_info(&self, region: RegionHandle) -> RegionInfo {
        self.core.mem.info(region)
    }

    /// Grants `peer` permissions on a region.
    pub fn grant(&mut self, region: RegionHandle, peer: Ipv4Addr, perms: Permissions) {
        self.core.mem.grant(region, peer, perms);
    }

    /// Revokes `peer`'s explicit grant on a region.
    pub fn revoke(&mut self, region: RegionHandle, peer: Ipv4Addr) {
        self.core.mem.revoke(region, peer);
    }

    /// Restricts which local queue pairs may write into `region`.
    pub fn set_allowed_writer_qpns(
        &mut self,
        region: RegionHandle,
        qpns: Option<std::collections::BTreeSet<u32>>,
    ) {
        self.core.mem.set_allowed_writer_qpns(region, qpns);
    }

    /// Requests [`RdmaApp::on_remote_write`] notifications for writes
    /// landing in `region`.
    pub fn watch_region(&mut self, region: RegionHandle) {
        let rkey = self.core.mem.info(region).rkey;
        self.core.watch_keys.insert(rkey.0, region);
    }

    /// Local read from a region.
    pub fn read_local(&self, region: RegionHandle, offset: usize, len: usize) -> &[u8] {
        self.core.mem.read_local(region, offset, len)
    }

    /// Local write into a region.
    pub fn write_local(&mut self, region: RegionHandle, offset: usize, data: &[u8]) {
        self.core.mem.write_local(region, offset, data);
    }

    /// Initiates a CM handshake towards `remote_ip`, returning the
    /// handshake id. A [`CmEvent::Connected`] or [`CmEvent::Rejected`]
    /// follows.
    pub fn connect(&mut self, remote_ip: Ipv4Addr, private_data: Bytes) -> u64 {
        let qpn = self.core.alloc_qpn();
        let start_psn = self.core.next_start_psn();
        let mut qp = QueuePair::new(
            qpn,
            start_psn,
            self.core.cfg.mtu,
            self.core.cfg.max_inflight,
        );
        qp.begin_connect();
        self.core.insert_qp(qpn.masked(), qp);
        let handshake_id = (u64::from(u32::from_be_bytes(self.core.cfg.ip.octets())) << 24)
            | self.core.next_handshake;
        self.core.next_handshake += 1;
        self.core.initiated.insert(handshake_id, qpn);
        let msg = CmMessage::ConnectRequest {
            handshake_id,
            qpn,
            start_psn,
            private_data,
        };
        let frame = self.core.build_cm_frame(remote_ip, &msg);
        self.core.cpu.run(self.ctx.now, self.core.cfg.cm_cost);
        let port = self.core.active_port;
        self.core.qp_ports.insert(qpn.masked(), port);
        self.core.tx_fifo.push_back((port, frame));
        self.core.kick_tx(self.ctx);
        handshake_id
    }

    /// Accepts an incoming connect request, creating the responder queue
    /// pair and sending the ConnectReply with `private_data` piggybacked.
    pub fn accept(
        &mut self,
        handshake_id: u64,
        from_ip: Ipv4Addr,
        from_qpn: Qpn,
        start_psn: Psn,
        private_data: Bytes,
    ) -> Qpn {
        let qpn = self.core.alloc_qpn();
        let local_psn = self.core.next_start_psn();
        let mut qp = QueuePair::new(
            qpn,
            local_psn,
            self.core.cfg.mtu,
            self.core.cfg.max_inflight,
        );
        qp.establish_responder(PeerInfo {
            ip: from_ip,
            qpn: from_qpn,
            start_psn,
        });
        self.core.insert_qp(qpn.masked(), qp);
        self.core.responding.insert(handshake_id, qpn);
        let msg = CmMessage::ConnectReply {
            handshake_id,
            qpn,
            start_psn: local_psn,
            private_data,
        };
        let frame = self.core.build_cm_frame(from_ip, &msg);
        self.core.cpu.run(self.ctx.now, self.core.cfg.cm_cost);
        let port = self
            .core
            .request_ports
            .remove(&handshake_id)
            .unwrap_or(self.core.active_port);
        self.core.qp_ports.insert(qpn.masked(), port);
        self.core.tx_fifo.push_back((port, frame));
        self.core.kick_tx(self.ctx);
        qpn
    }

    /// Rejects an incoming connect request.
    pub fn reject(&mut self, handshake_id: u64, from_ip: Ipv4Addr, reason: RejectReason) {
        let msg = CmMessage::ConnectReject {
            handshake_id,
            reason,
        };
        let frame = self.core.build_cm_frame(from_ip, &msg);
        let port = self
            .core
            .request_ports
            .remove(&handshake_id)
            .unwrap_or(self.core.active_port);
        self.core.tx_fifo.push_back((port, frame));
        self.core.kick_tx(self.ctx);
    }

    /// Tears down a queue pair (e.g. when abandoning a connection after a
    /// fatal error). Outstanding requests flush.
    pub fn destroy_qp(&mut self, qpn: Qpn) {
        self.core.remove_qp(qpn.masked());
        self.core.qp_ports.remove(&qpn.masked());
    }

    /// Switches the path used by *new* connections (multi-homed hosts:
    /// fail over to a backup fabric when the primary dies).
    pub fn set_active_port(&mut self, port: PortId) {
        self.core.active_port = port;
    }

    /// The port new connections currently use.
    pub fn active_port(&self) -> PortId {
        self.core.active_port
    }

    /// The state of a queue pair, if it exists.
    pub fn qp_state(&self, qpn: Qpn) -> Option<QpState> {
        self.core.qps.get(&qpn.masked()).map(|q| q.state())
    }

    /// The peer of a queue pair, once connected.
    pub fn qp_peer(&self, qpn: Qpn) -> Option<PeerInfo> {
        self.core.qps.get(&qpn.masked()).and_then(|q| q.peer())
    }

    /// Messages posted on `qpn` and not yet acknowledged.
    pub fn qp_inflight(&self, qpn: Qpn) -> usize {
        self.core
            .qps
            .get(&qpn.masked())
            .map(|q| q.inflight_len() + q.pending_len())
            .unwrap_or(0)
    }

    /// Posts a one-sided RDMA write. Charges the CPU for the post; the NIC
    /// picks the request up when the doorbell lands.
    pub fn post_write(
        &mut self,
        qpn: Qpn,
        wr_id: WrId,
        remote_va: u64,
        rkey: crate::types::RKey,
        data: Bytes,
    ) {
        self.post(
            qpn,
            WorkRequest::Write {
                wr_id,
                remote_va,
                rkey,
                data,
            },
        );
    }

    /// Posts a one-sided RDMA read landing in `local_region` at
    /// `local_offset`.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the MTU (single-packet reads only in this
    /// model; the protocols only read small heartbeat words).
    #[allow(clippy::too_many_arguments)] // mirrors the verbs API shape
    pub fn post_read(
        &mut self,
        qpn: Qpn,
        wr_id: WrId,
        remote_va: u64,
        rkey: crate::types::RKey,
        len: u32,
        local_region: RegionHandle,
        local_offset: usize,
    ) {
        assert!(
            len as usize <= self.core.cfg.mtu,
            "reads larger than one MTU are not modelled"
        );
        self.core
            .read_landing
            .insert((qpn.masked(), wr_id.0), (local_region, local_offset));
        self.post(
            qpn,
            WorkRequest::Read {
                wr_id,
                remote_va,
                rkey,
                len,
                local_region,
                local_offset,
            },
        );
    }

    fn post(&mut self, qpn: Qpn, wr: WorkRequest) {
        let done = self.core.cpu.run(self.ctx.now, self.core.cfg.post_cost);
        let wr_id = wr.wr_id();
        self.core
            .cfg
            .tracer
            .emit(self.ctx.now, || TraceEvent::WqePost {
                qpn: u64::from(qpn.masked()),
                wr_id: wr_id.0,
            });
        match self.core.qps.get_mut(&qpn.masked()) {
            Some(qp) => {
                if qp.post(wr).is_err() {
                    self.core.complete(
                        Completion {
                            qpn,
                            wr_id,
                            status: CompletionStatus::Flushed,
                            credits: 0,
                        },
                        self.ctx,
                    );
                    return;
                }
                self.core.tx_ready.insert(qpn.masked());
            }
            None => {
                self.core.complete(
                    Completion {
                        qpn,
                        wr_id,
                        status: CompletionStatus::Flushed,
                        credits: 0,
                    },
                    self.ctx,
                );
                return;
            }
        }
        // The doorbell rings when the CPU finishes the post.
        self.ctx.schedule_at(done, TimerToken(TK_POST));
    }

    /// Charges additional application CPU work (protocol logic beyond the
    /// fixed per-verb costs).
    pub fn cpu_work(&mut self, cost: SimDuration) {
        self.core.cpu.run(self.ctx.now, cost);
    }

    /// Arms an application timer; [`RdmaApp::on_timer`] fires with `token`.
    ///
    /// # Panics
    ///
    /// Panics if `token` uses the top eight bits (reserved for the host's
    /// internal multiplexing).
    pub fn set_app_timer(&mut self, after: SimDuration, token: u64) {
        assert_eq!(token & TK_CLASS_MASK, 0, "app timer token too large");
        self.ctx.schedule(after, TimerToken(TK_APP | token));
    }

    /// Total CPU busy time so far (for utilization reporting).
    pub fn cpu_busy(&self) -> SimDuration {
        self.core.cpu.busy_time()
    }
}

/// A complete RDMA host node: application + CPU + NIC + memory.
pub struct Host<A: RdmaApp> {
    core: HostCore,
    app: A,
}

impl<A: RdmaApp> Host<A> {
    /// Builds a host with configuration `cfg` running `app`.
    pub fn new(cfg: HostConfig, app: A) -> Self {
        Host {
            core: HostCore::new(cfg),
            app,
        }
    }

    /// The application, for post-run inspection.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable access to the application (e.g. to inject workload
    /// parameters between runs).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Host-level counters.
    pub fn stats(&self) -> HostStats {
        self.core.stats
    }

    /// Read-only view of the host's registered memory — invariant
    /// checkers audit region permissions through this without involving
    /// the (simulated) host CPU.
    pub fn memory(&self) -> &HostMemory {
        &self.core.mem
    }

    /// This host's IP.
    pub fn ip(&self) -> Ipv4Addr {
        self.core.cfg.ip
    }

    /// Total CPU busy time.
    pub fn cpu_busy(&self) -> SimDuration {
        self.core.cpu.busy_time()
    }

    /// Runs a closure over the application with live [`HostOps`] — the
    /// hook experiment harnesses use (via
    /// `netsim::Simulation::with_node`) to inject actions mid-run, e.g.
    /// forcing a communication rebuild.
    pub fn with_ops<R>(
        &mut self,
        ctx: &mut Context<'_>,
        f: impl FnOnce(&mut A, &mut HostOps<'_, '_>) -> R,
    ) -> R {
        let mut ops = Self::ops(&mut self.core, ctx);
        f(&mut self.app, &mut ops)
    }

    fn ops<'a, 'c>(core: &'a mut HostCore, ctx: &'a mut Context<'c>) -> HostOps<'a, 'c> {
        HostOps { core, ctx }
    }

    fn maybe_arm_retransmit(&mut self, ctx: &mut Context<'_>) {
        if !self.core.rt_tick_armed && self.core.any_inflight() {
            self.core.rt_tick_armed = true;
            ctx.schedule(self.core.cfg.retransmit_timeout, TimerToken(TK_RETRANSMIT));
        }
    }
}

impl<A: RdmaApp> Node for Host<A> {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        let mut ops = Self::ops(&mut self.core, ctx);
        self.app.on_start(&mut ops);
        self.maybe_arm_retransmit(ctx);
    }

    fn on_frame(&mut self, port: PortId, frame: Frame, ctx: &mut Context<'_>) {
        // Classify by the BTH opcode byte (fixed offset): *request-starting*
        // packets (write-first/only, read request, send) consume a
        // receive-buffer slot — the unit the credit count advertises.
        // Middle/last packets belong to an already-admitted request, and
        // responses consume nothing. A full buffer tail-drops new
        // requests — what happens on real NICs when a sender ignores the
        // advertised credits.
        const BTH_OPCODE_OFFSET: usize = 14 + 20 + 8;
        let is_request = frame
            .data
            .get(BTH_OPCODE_OFFSET)
            .and_then(|&b| crate::opcode::Opcode::from_wire(b))
            .map(|op| {
                matches!(
                    op,
                    Opcode::WriteFirst | Opcode::WriteOnly | Opcode::ReadRequest | Opcode::SendOnly
                )
            })
            .unwrap_or(false);
        if is_request && self.core.rx_request_backlog >= self.core.cfg.rx_capacity {
            self.core.stats.rx_overflow_drops += 1;
            return;
        }
        self.core.rx_request_backlog += usize::from(is_request);
        self.core.rx_queue.push_back((port, frame, is_request));
        if !self.core.rx_busy {
            self.core.rx_busy = true;
            ctx.schedule(self.core.cfg.nic_rx_cost, TimerToken(TK_RX));
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_>) {
        let class = token.0 & TK_CLASS_MASK;
        let data = token.0 & TK_DATA_MASK;
        match class {
            TK_NIC_TX => {
                if let Some((port, frame)) = self.core.tx_staged.take() {
                    self.core.stats.packets_sent += 1;
                    ctx.send(port, frame);
                }
                self.core.kick_tx(ctx);
                self.maybe_arm_retransmit(ctx);
            }
            TK_RX => {
                if let Some((port, frame, is_request)) = self.core.rx_queue.pop_front() {
                    self.core.rx_request_backlog -= usize::from(is_request);
                    self.core.process_packet(port, frame, ctx);
                }
                if self.core.rx_queue.is_empty() {
                    self.core.rx_busy = false;
                } else {
                    ctx.schedule(self.core.cfg.nic_rx_cost, TimerToken(TK_RX));
                }
                self.maybe_arm_retransmit(ctx);
            }
            TK_POST => {
                self.core.kick_tx(ctx);
                self.maybe_arm_retransmit(ctx);
            }
            TK_DELIVER => {
                let Some(delivery) = self.core.deliveries.remove(&data) else {
                    return;
                };
                let mut ops = Self::ops(&mut self.core, ctx);
                match delivery {
                    Delivery::Completion(c) => self.app.on_completion(c, &mut ops),
                    Delivery::Cm(ev) => self.app.on_cm_event(ev, &mut ops),
                    Delivery::RemoteWrite {
                        region,
                        offset,
                        payload,
                    } => self.app.on_remote_write(region, offset, &payload, &mut ops),
                    Delivery::Nak { qpn, code } => self.app.on_nak(qpn, code, &mut ops),
                }
                self.maybe_arm_retransmit(ctx);
            }
            TK_APP => {
                let mut ops = Self::ops(&mut self.core, ctx);
                self.app.on_timer(data, &mut ops);
                self.maybe_arm_retransmit(ctx);
            }
            TK_RETRANSMIT => {
                self.core.rt_tick_armed = false;
                let timeout = self.core.cfg.retransmit_timeout;
                let retry_limit = self.core.cfg.retry_limit;
                // Ascending-QPN order (from the maintained index): the
                // retransmit sweep emits frames, so its order is part of
                // the deterministic event sequence.
                let qpns: Vec<u32> = self.core.qp_order.clone();
                for qpn in qpns {
                    let action = self
                        .core
                        .qps
                        .get_mut(&qpn)
                        .expect("qpn from keys")
                        .check_timeout(ctx.now, timeout, retry_limit);
                    match action {
                        RecoveryAction::None => {}
                        RecoveryAction::Retransmit(pkts) => {
                            self.core.stats.timeout_retransmits += pkts.len() as u64;
                            self.core
                                .cfg
                                .tracer
                                .emit(ctx.now, || TraceEvent::Retransmit {
                                    qpn: u64::from(qpn),
                                    kind: RetransmitKind::Timeout,
                                    packets: pkts.len() as u64,
                                });
                            self.core.retransmit(Qpn(qpn), pkts);
                            self.core.kick_tx(ctx);
                        }
                        RecoveryAction::Fatal(ids) => {
                            for (i, wr_id) in ids.into_iter().enumerate() {
                                let status = if i == 0 {
                                    CompletionStatus::TimedOut
                                } else {
                                    CompletionStatus::Flushed
                                };
                                self.core.complete(
                                    Completion {
                                        qpn: Qpn(qpn),
                                        wr_id,
                                        status,
                                        credits: 0,
                                    },
                                    ctx,
                                );
                            }
                        }
                    }
                }
                self.maybe_arm_retransmit(ctx);
            }
            _ => {}
        }
    }

    fn label(&self) -> String {
        format!("host {}", self.core.cfg.ip)
    }
}
