//! Verbs-style work requests and completions: the host ↔ NIC contract.

use bytes::Bytes;
use std::fmt;

use crate::memory::RegionHandle;
use crate::types::{Qpn, RKey};
use crate::wire::NakCode;

/// Application-chosen identifier echoed back in the matching completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WrId(pub u64);

impl fmt::Display for WrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wr{}", self.0)
    }
}

/// A work request posted to a queue pair's send queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkRequest {
    /// One-sided RDMA write: place `data` at `remote_va` in the region
    /// authorized by `rkey`, without involving the remote CPU.
    Write {
        /// Echoed in the completion.
        wr_id: WrId,
        /// Destination virtual address.
        remote_va: u64,
        /// Remote region key.
        rkey: RKey,
        /// Bytes to write.
        data: Bytes,
    },
    /// One-sided RDMA read of `len` bytes from `remote_va`, delivered into
    /// `local_region` at `local_offset`.
    Read {
        /// Echoed in the completion.
        wr_id: WrId,
        /// Source virtual address on the remote host.
        remote_va: u64,
        /// Remote region key.
        rkey: RKey,
        /// Bytes to read (must fit in one MTU in this model).
        len: u32,
        /// Local landing region.
        local_region: RegionHandle,
        /// Offset within the landing region.
        local_offset: usize,
    },
}

impl WorkRequest {
    /// The application identifier of this request.
    pub fn wr_id(&self) -> WrId {
        match self {
            WorkRequest::Write { wr_id, .. } | WorkRequest::Read { wr_id, .. } => *wr_id,
        }
    }

    /// Message payload length: bytes written for a write, bytes read for a
    /// read.
    pub fn message_len(&self) -> usize {
        match self {
            WorkRequest::Write { data, .. } => data.len(),
            WorkRequest::Read { len, .. } => *len as usize,
        }
    }
}

/// Terminal status of a work request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionStatus {
    /// The remote NIC acknowledged the operation.
    Success,
    /// The remote NIC refused with this NAK code.
    RemoteError(NakCode),
    /// The retransmission budget was exhausted without an acknowledgement
    /// (lost peer, lost path, or dead switch — §V-E "Crashed switch").
    TimedOut,
    /// The request was flushed because the queue pair entered the error
    /// state.
    Flushed,
}

impl CompletionStatus {
    /// `true` only for [`CompletionStatus::Success`].
    pub fn is_success(self) -> bool {
        matches!(self, CompletionStatus::Success)
    }
}

impl fmt::Display for CompletionStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompletionStatus::Success => write!(f, "success"),
            CompletionStatus::RemoteError(c) => write!(f, "remote error: {c}"),
            CompletionStatus::TimedOut => write!(f, "transport timeout"),
            CompletionStatus::Flushed => write!(f, "flushed (queue pair in error state)"),
        }
    }
}

/// A completion queue entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The queue pair the request was posted on.
    pub qpn: Qpn,
    /// The application identifier of the completed request.
    pub wr_id: WrId,
    /// How the request ended.
    pub status: CompletionStatus,
    /// Remote flow-control credits advertised on the completing ACK
    /// (meaningful on success).
    pub credits: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wr_accessors() {
        let w = WorkRequest::Write {
            wr_id: WrId(7),
            remote_va: 0x1000,
            rkey: RKey(1),
            data: Bytes::from_static(b"abcd"),
        };
        assert_eq!(w.wr_id(), WrId(7));
        assert_eq!(w.message_len(), 4);
        let mut mem = crate::memory::HostMemory::new(0);
        let r = WorkRequest::Read {
            wr_id: WrId(8),
            remote_va: 0,
            rkey: RKey(1),
            len: 16,
            local_region: mem.register(32, crate::types::Permissions::NONE),
            local_offset: 0,
        };
        assert_eq!(r.message_len(), 16);
    }

    #[test]
    fn status_predicates() {
        assert!(CompletionStatus::Success.is_success());
        assert!(!CompletionStatus::TimedOut.is_success());
        assert!(!CompletionStatus::RemoteError(NakCode::RemoteAccessError).is_success());
        assert_eq!(CompletionStatus::TimedOut.to_string(), "transport timeout");
    }
}
