//! Connection-management datagrams (the InfiniBand CM of §II-A).
//!
//! The handshake: a client sends [`CmMessage::ConnectRequest`] naming its
//! queue pair; the server answers [`CmMessage::ConnectReply`] naming its
//! own; the client finishes with [`CmMessage::ReadyToUse`]. Either side may
//! refuse with [`CmMessage::ConnectReject`]. Requests and replies can carry
//! *private data* — P4CE piggybacks the replica set on the request and the
//! virtual address / virtual `R_key` on the reply (§IV-A).
//!
//! On the wire these ride as `SEND_ONLY` packets addressed to the
//! well-known CM queue pair ([`crate::types::CM_QPN`]), standing in for the
//! MAD datagrams of a real fabric.

use bytes::{BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

use crate::types::{Psn, Qpn, RKey};

/// Maximum private-data bytes in a ConnectRequest (IB CM REQ limit).
pub const MAX_REQ_PRIVATE_DATA: usize = 92;
/// Maximum private-data bytes in a ConnectReply (IB CM REP limit).
pub const MAX_REP_PRIVATE_DATA: usize = 196;

/// Why a connection attempt was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The responder does not accept connections right now.
    NotListening,
    /// The requester is not authorized (e.g. not the current leader).
    NotAuthorized,
    /// The responder ran out of resources (queue pairs, table entries, …).
    NoResources,
}

impl RejectReason {
    fn to_wire(self) -> u8 {
        match self {
            RejectReason::NotListening => 0,
            RejectReason::NotAuthorized => 1,
            RejectReason::NoResources => 2,
        }
    }

    fn from_wire(v: u8) -> Option<Self> {
        Some(match v {
            0 => RejectReason::NotListening,
            1 => RejectReason::NotAuthorized,
            2 => RejectReason::NoResources,
            _ => return None,
        })
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::NotListening => "not listening",
            RejectReason::NotAuthorized => "not authorized",
            RejectReason::NoResources => "no resources",
        };
        f.write_str(s)
    }
}

/// A connection-management datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmMessage {
    /// First message of the handshake: "connect to me at this queue pair".
    ConnectRequest {
        /// Correlates the messages of one handshake.
        handshake_id: u64,
        /// The requester's queue pair number.
        qpn: Qpn,
        /// The requester's initial packet sequence number.
        start_psn: Psn,
        /// Application-defined payload (≤ [`MAX_REQ_PRIVATE_DATA`]).
        private_data: Bytes,
    },
    /// The responder's half of the handshake.
    ConnectReply {
        /// Echoes the request's `handshake_id`.
        handshake_id: u64,
        /// The responder's queue pair number.
        qpn: Qpn,
        /// The responder's initial packet sequence number.
        start_psn: Psn,
        /// Application-defined payload (≤ [`MAX_REP_PRIVATE_DATA`]).
        private_data: Bytes,
    },
    /// Final message: the connection is live.
    ReadyToUse {
        /// Echoes the request's `handshake_id`.
        handshake_id: u64,
    },
    /// The responder refuses the connection.
    ConnectReject {
        /// Echoes the request's `handshake_id`.
        handshake_id: u64,
        /// Why.
        reason: RejectReason,
    },
}

impl CmMessage {
    /// The handshake this message belongs to.
    pub fn handshake_id(&self) -> u64 {
        match self {
            CmMessage::ConnectRequest { handshake_id, .. }
            | CmMessage::ConnectReply { handshake_id, .. }
            | CmMessage::ReadyToUse { handshake_id }
            | CmMessage::ConnectReject { handshake_id, .. } => *handshake_id,
        }
    }

    /// Serializes the datagram.
    ///
    /// # Panics
    ///
    /// Panics if private data exceeds the CM limits (a construction bug).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(32);
        match self {
            CmMessage::ConnectRequest {
                handshake_id,
                qpn,
                start_psn,
                private_data,
            } => {
                assert!(
                    private_data.len() <= MAX_REQ_PRIVATE_DATA,
                    "ConnectRequest private data exceeds {MAX_REQ_PRIVATE_DATA} bytes"
                );
                buf.put_u8(1);
                buf.put_u64(*handshake_id);
                buf.put_u32(qpn.masked());
                buf.put_u32(start_psn.value());
                buf.put_u16(private_data.len() as u16);
                buf.put_slice(private_data);
            }
            CmMessage::ConnectReply {
                handshake_id,
                qpn,
                start_psn,
                private_data,
            } => {
                assert!(
                    private_data.len() <= MAX_REP_PRIVATE_DATA,
                    "ConnectReply private data exceeds {MAX_REP_PRIVATE_DATA} bytes"
                );
                buf.put_u8(2);
                buf.put_u64(*handshake_id);
                buf.put_u32(qpn.masked());
                buf.put_u32(start_psn.value());
                buf.put_u16(private_data.len() as u16);
                buf.put_slice(private_data);
            }
            CmMessage::ReadyToUse { handshake_id } => {
                buf.put_u8(3);
                buf.put_u64(*handshake_id);
            }
            CmMessage::ConnectReject {
                handshake_id,
                reason,
            } => {
                buf.put_u8(4);
                buf.put_u64(*handshake_id);
                buf.put_u8(reason.to_wire());
            }
        }
        buf.freeze()
    }

    /// Deserializes a datagram.
    ///
    /// # Errors
    ///
    /// Returns [`CmDecodeError`] on truncated or unrecognized input.
    pub fn decode(bytes: &[u8]) -> Result<CmMessage, CmDecodeError> {
        fn take<const N: usize>(b: &[u8], off: usize) -> Result<[u8; N], CmDecodeError> {
            b.get(off..off + N)
                .and_then(|s| s.try_into().ok())
                .ok_or(CmDecodeError::Truncated)
        }
        let tag = *bytes.first().ok_or(CmDecodeError::Truncated)?;
        let handshake_id = u64::from_be_bytes(take::<8>(bytes, 1)?);
        match tag {
            1 | 2 => {
                let qpn = Qpn(u32::from_be_bytes(take::<4>(bytes, 9)?));
                let start_psn = Psn::new(u32::from_be_bytes(take::<4>(bytes, 13)?));
                let pd_len = u16::from_be_bytes(take::<2>(bytes, 17)?) as usize;
                let pd = bytes.get(19..19 + pd_len).ok_or(CmDecodeError::Truncated)?;
                let private_data = Bytes::copy_from_slice(pd);
                Ok(if tag == 1 {
                    CmMessage::ConnectRequest {
                        handshake_id,
                        qpn,
                        start_psn,
                        private_data,
                    }
                } else {
                    CmMessage::ConnectReply {
                        handshake_id,
                        qpn,
                        start_psn,
                        private_data,
                    }
                })
            }
            3 => Ok(CmMessage::ReadyToUse { handshake_id }),
            4 => {
                let raw = *bytes.get(9).ok_or(CmDecodeError::Truncated)?;
                let reason =
                    RejectReason::from_wire(raw).ok_or(CmDecodeError::BadRejectReason(raw))?;
                Ok(CmMessage::ConnectReject {
                    handshake_id,
                    reason,
                })
            }
            t => Err(CmDecodeError::BadTag(t)),
        }
    }
}

/// Private data carried on a `ConnectReply`: the virtual address and
/// `R_key` the client must use for one-sided operations against the
/// responder's exposed region (§IV-A). P4CE's switch replies with a
/// *virtual* pair (VA = 0, random key) that it later translates per replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionAdvert {
    /// Base virtual address of the exposed region.
    pub va: u64,
    /// Remote key authorizing access.
    pub rkey: RKey,
    /// Region length in bytes.
    pub len: u64,
}

impl RegionAdvert {
    /// Encoded length in bytes.
    pub const WIRE_LEN: usize = 20;

    /// Serializes the advert (fits comfortably in CM private data).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(Self::WIRE_LEN);
        buf.put_u64(self.va);
        buf.put_u32(self.rkey.0);
        buf.put_u64(self.len);
        buf.freeze()
    }

    /// Deserializes an advert.
    ///
    /// # Errors
    ///
    /// Returns [`CmDecodeError::Truncated`] if the slice is too short.
    pub fn decode(bytes: &[u8]) -> Result<RegionAdvert, CmDecodeError> {
        if bytes.len() < Self::WIRE_LEN {
            return Err(CmDecodeError::Truncated);
        }
        Ok(RegionAdvert {
            va: u64::from_be_bytes(bytes[0..8].try_into().expect("len")),
            rkey: RKey(u32::from_be_bytes(bytes[8..12].try_into().expect("len"))),
            len: u64::from_be_bytes(bytes[12..20].try_into().expect("len")),
        })
    }
}

/// Errors decoding a CM datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmDecodeError {
    /// Input ended before the message did.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// Unknown reject reason.
    BadRejectReason(u8),
}

impl fmt::Display for CmDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmDecodeError::Truncated => write!(f, "truncated CM datagram"),
            CmDecodeError::BadTag(t) => write!(f, "unknown CM message tag {t}"),
            CmDecodeError::BadRejectReason(r) => write!(f, "unknown reject reason {r}"),
        }
    }
}

impl Error for CmDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_with_private_data() {
        let msg = CmMessage::ConnectRequest {
            handshake_id: 0xfeed,
            qpn: Qpn(42),
            start_psn: Psn::new(1000),
            private_data: Bytes::from_static(b"replica-set"),
        };
        assert_eq!(CmMessage::decode(&msg.encode()).expect("decode"), msg);
        assert_eq!(msg.handshake_id(), 0xfeed);
    }

    #[test]
    fn reply_rtu_reject_roundtrip() {
        let reply = CmMessage::ConnectReply {
            handshake_id: 7,
            qpn: Qpn(9),
            start_psn: Psn::new(55),
            private_data: RegionAdvert {
                va: 0,
                rkey: RKey(0x1234),
                len: 1 << 20,
            }
            .encode(),
        };
        let rtu = CmMessage::ReadyToUse { handshake_id: 7 };
        let rej = CmMessage::ConnectReject {
            handshake_id: 7,
            reason: RejectReason::NotAuthorized,
        };
        for msg in [reply, rtu, rej] {
            assert_eq!(CmMessage::decode(&msg.encode()).expect("decode"), msg);
        }
    }

    #[test]
    fn region_advert_roundtrip() {
        let adv = RegionAdvert {
            va: 0xabc0_0000,
            rkey: RKey(0x5555_aaaa),
            len: 4096,
        };
        assert_eq!(RegionAdvert::decode(&adv.encode()).expect("decode"), adv);
        assert_eq!(adv.encode().len(), RegionAdvert::WIRE_LEN);
    }

    #[test]
    fn truncation_is_detected() {
        let msg = CmMessage::ConnectRequest {
            handshake_id: 1,
            qpn: Qpn(2),
            start_psn: Psn::new(3),
            private_data: Bytes::from_static(b"abcdef"),
        };
        let enc = msg.encode();
        for cut in [0, 5, 12, enc.len() - 1] {
            assert_eq!(
                CmMessage::decode(&enc[..cut]),
                Err(CmDecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut raw = CmMessage::ReadyToUse { handshake_id: 1 }.encode().to_vec();
        raw[0] = 99;
        assert_eq!(CmMessage::decode(&raw), Err(CmDecodeError::BadTag(99)));
    }

    #[test]
    #[should_panic(expected = "private data exceeds")]
    fn oversized_private_data_panics() {
        let msg = CmMessage::ConnectRequest {
            handshake_id: 1,
            qpn: Qpn(2),
            start_psn: Psn::new(3),
            private_data: Bytes::from(vec![0u8; MAX_REQ_PRIVATE_DATA + 1]),
        };
        let _ = msg.encode();
    }
}
