//! Registered memory regions and one-sided access checks.
//!
//! Each host owns a [`HostMemory`]: a set of registered regions, each with
//! a virtual address, a randomly generated `R_key`, and per-peer
//! permissions. The NIC consults it — without involving the host CPU — to
//! execute incoming one-sided operations, exactly the check that lets Mu
//! (and therefore P4CE) enforce "only the current leader can write to my
//! log" (§III).

use bytes::Bytes;
use netsim::FxHashMap;
use std::error::Error;
use std::fmt;
use std::net::Ipv4Addr;

use std::collections::BTreeSet;

use crate::types::{Permissions, Qpn, RKey};

/// Handle to a registered region within one [`HostMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionHandle(usize);

/// Public identity of a region: what a peer needs to address it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionInfo {
    /// Base virtual address.
    pub va: u64,
    /// Length in bytes.
    pub len: u64,
    /// The remote key peers must present.
    pub rkey: RKey,
}

#[derive(Debug)]
struct Region {
    info: RegionInfo,
    default_perms: Permissions,
    peer_perms: FxHashMap<Ipv4Addr, Permissions>,
    /// When set, incoming writes must additionally arrive on one of these
    /// local queue pairs. This is how a replica fences out a deposed
    /// leader whose traffic still arrives from the (unchanged) switch
    /// address: the old group's queue pair is simply no longer listed.
    allowed_writer_qpns: Option<BTreeSet<u32>>,
    buf: Vec<u8>,
}

/// Why a one-sided operation was refused (the NIC answers these with a
/// `RemoteAccessError` NAK).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessError {
    /// No region matches the presented `R_key`.
    BadKey(RKey),
    /// The address range falls outside the region.
    OutOfBounds {
        /// Requested virtual address.
        va: u64,
        /// Requested length.
        len: u64,
    },
    /// The peer lacks the required permission.
    PermissionDenied {
        /// The requesting peer.
        peer: Ipv4Addr,
        /// `true` if the denied operation was a write.
        write: bool,
    },
    /// The write arrived on a queue pair that is not authorized for this
    /// region (stale leader fencing).
    WrongQueuePair(Qpn),
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessError::BadKey(k) => write!(f, "no region matches {k}"),
            AccessError::OutOfBounds { va, len } => {
                write!(f, "access [{va:#x}, +{len}) outside region bounds")
            }
            AccessError::PermissionDenied { peer, write } => write!(
                f,
                "peer {peer} lacks remote-{} permission",
                if *write { "write" } else { "read" }
            ),
            AccessError::WrongQueuePair(qpn) => {
                write!(f, "writes via {qpn} are not authorized for this region")
            }
        }
    }
}

impl Error for AccessError {}

/// The registered memory of one host.
#[derive(Debug)]
pub struct HostMemory {
    regions: Vec<Region>,
    by_rkey: FxHashMap<u32, usize>,
    next_va: u64,
    key_state: u64,
}

impl HostMemory {
    /// Creates an empty memory with a deterministic key-generation seed
    /// (distinct per host so keys differ across machines, as in the paper).
    pub fn new(seed: u64) -> Self {
        HostMemory {
            regions: Vec::new(),
            by_rkey: FxHashMap::default(),
            next_va: 0x0001_0000_0000,
            key_state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    fn next_rkey(&mut self) -> RKey {
        loop {
            self.key_state = self
                .key_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (self.key_state >> 32) as u32;
            if key != 0 && !self.by_rkey.contains_key(&key) {
                return RKey(key);
            }
        }
    }

    /// Registers a zero-initialized region of `len` bytes with default
    /// remote permissions `perms`, returning its handle.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn register(&mut self, len: usize, perms: Permissions) -> RegionHandle {
        assert!(len > 0, "cannot register an empty region");
        let rkey = self.next_rkey();
        let va = self.next_va;
        // Page-align the next region and leave a guard gap.
        self.next_va += ((len as u64 + 0xfff) & !0xfff) + 0x1000;
        let idx = self.regions.len();
        self.regions.push(Region {
            info: RegionInfo {
                va,
                len: len as u64,
                rkey,
            },
            default_perms: perms,
            peer_perms: FxHashMap::default(),
            allowed_writer_qpns: None,
            buf: vec![0; len],
        });
        self.by_rkey.insert(rkey.0, idx);
        RegionHandle(idx)
    }

    /// The public identity of a region.
    pub fn info(&self, handle: RegionHandle) -> RegionInfo {
        self.regions[handle.0].info
    }

    /// Replaces the default permissions applied to peers without an
    /// explicit grant.
    pub fn set_default_perms(&mut self, handle: RegionHandle, perms: Permissions) {
        self.regions[handle.0].default_perms = perms;
    }

    /// Grants `peer` specific permissions on the region, overriding the
    /// default. This is the operation a replica performs when it adopts a
    /// new leader (§III, "Decision protocol").
    pub fn grant(&mut self, handle: RegionHandle, peer: Ipv4Addr, perms: Permissions) {
        self.regions[handle.0].peer_perms.insert(peer, perms);
    }

    /// Removes `peer`'s explicit grant, reverting it to the default.
    pub fn revoke(&mut self, handle: RegionHandle, peer: Ipv4Addr) {
        self.regions[handle.0].peer_perms.remove(&peer);
    }

    /// Restricts (or, with `None`, un-restricts) which local queue pairs
    /// incoming writes to this region may arrive on. Used by replicas to
    /// fence a deposed leader's communication group (§III, "Faulty
    /// leader").
    pub fn set_allowed_writer_qpns(&mut self, handle: RegionHandle, qpns: Option<BTreeSet<u32>>) {
        self.regions[handle.0].allowed_writer_qpns = qpns;
    }

    /// The permissions `peer` currently holds on the region.
    pub fn effective_perms(&self, handle: RegionHandle, peer: Ipv4Addr) -> Permissions {
        let r = &self.regions[handle.0];
        *r.peer_perms.get(&peer).unwrap_or(&r.default_perms)
    }

    /// Local read of `[offset, offset+len)` within a region.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region (local access is
    /// programmer-controlled).
    pub fn read_local(&self, handle: RegionHandle, offset: usize, len: usize) -> &[u8] {
        &self.regions[handle.0].buf[offset..offset + len]
    }

    /// Local write into a region.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    pub fn write_local(&mut self, handle: RegionHandle, offset: usize, data: &[u8]) {
        self.regions[handle.0].buf[offset..offset + data.len()].copy_from_slice(data);
    }

    fn locate(&self, rkey: RKey, va: u64, len: u64) -> Result<(usize, usize), AccessError> {
        let idx = *self.by_rkey.get(&rkey.0).ok_or(AccessError::BadKey(rkey))?;
        let info = self.regions[idx].info;
        let end = va
            .checked_add(len)
            .ok_or(AccessError::OutOfBounds { va, len })?;
        if va < info.va || end > info.va + info.len {
            return Err(AccessError::OutOfBounds { va, len });
        }
        Ok((idx, (va - info.va) as usize))
    }

    /// Executes an incoming one-sided write: validates the key, bounds and
    /// `peer`'s write permission, then stores `data` at `va`. Returns the
    /// landing region and byte offset within it, so the NIC can report the
    /// completion without a second key lookup.
    ///
    /// # Errors
    ///
    /// Returns the [`AccessError`] the NIC should NAK with.
    pub fn remote_write(
        &mut self,
        peer: Ipv4Addr,
        via_qpn: Qpn,
        rkey: RKey,
        va: u64,
        data: &[u8],
    ) -> Result<(RegionHandle, u64), AccessError> {
        let (idx, off) = self.locate(rkey, va, data.len() as u64)?;
        let region = &mut self.regions[idx];
        let perms = *region
            .peer_perms
            .get(&peer)
            .unwrap_or(&region.default_perms);
        if !perms.remote_write {
            return Err(AccessError::PermissionDenied { peer, write: true });
        }
        if let Some(allowed) = &region.allowed_writer_qpns {
            if !allowed.contains(&via_qpn.masked()) {
                return Err(AccessError::WrongQueuePair(via_qpn));
            }
        }
        region.buf[off..off + data.len()].copy_from_slice(data);
        Ok((RegionHandle(idx), off as u64))
    }

    /// Executes an incoming one-sided read: validates key, bounds and
    /// `peer`'s read permission, then returns the bytes at `va`.
    ///
    /// # Errors
    ///
    /// Returns the [`AccessError`] the NIC should NAK with.
    pub fn remote_read(
        &self,
        peer: Ipv4Addr,
        rkey: RKey,
        va: u64,
        len: u64,
    ) -> Result<Bytes, AccessError> {
        let (idx, off) = self.locate(rkey, va, len)?;
        let region = &self.regions[idx];
        let perms = *region
            .peer_perms
            .get(&peer)
            .unwrap_or(&region.default_perms);
        if !perms.remote_read {
            return Err(AccessError::PermissionDenied { peer, write: false });
        }
        Ok(Bytes::copy_from_slice(&region.buf[off..off + len as usize]))
    }

    /// Number of registered regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, n)
    }

    #[test]
    fn register_assigns_distinct_keys_and_vas() {
        let mut mem = HostMemory::new(1);
        let a = mem.register(4096, Permissions::NONE);
        let b = mem.register(4096, Permissions::NONE);
        let (ia, ib) = (mem.info(a), mem.info(b));
        assert_ne!(ia.rkey, ib.rkey);
        assert!(ib.va >= ia.va + ia.len, "regions must not overlap");
        assert_eq!(mem.region_count(), 2);
    }

    #[test]
    fn keys_differ_across_hosts() {
        let mut m1 = HostMemory::new(1);
        let mut m2 = HostMemory::new(2);
        let r1 = m1.register(64, Permissions::NONE);
        let r2 = m2.register(64, Permissions::NONE);
        assert_ne!(m1.info(r1).rkey, m2.info(r2).rkey);
    }

    #[test]
    fn remote_write_respects_permissions() {
        let mut mem = HostMemory::new(3);
        let r = mem.register(128, Permissions::NONE);
        let info = mem.info(r);
        let err = mem
            .remote_write(peer(1), Qpn(0), info.rkey, info.va, b"hi")
            .expect_err("default denies");
        assert!(matches!(
            err,
            AccessError::PermissionDenied { write: true, .. }
        ));

        mem.grant(r, peer(1), Permissions::WRITE);
        mem.remote_write(peer(1), Qpn(0), info.rkey, info.va + 10, b"hi")
            .expect("granted peer may write");
        assert_eq!(mem.read_local(r, 10, 2), b"hi");

        // Another peer is still denied.
        assert!(mem
            .remote_write(peer(2), Qpn(0), info.rkey, info.va, b"x")
            .is_err());

        mem.revoke(r, peer(1));
        assert!(mem
            .remote_write(peer(1), Qpn(0), info.rkey, info.va, b"x")
            .is_err());
    }

    #[test]
    fn remote_read_respects_permissions() {
        let mut mem = HostMemory::new(4);
        let r = mem.register(64, Permissions::READ);
        let info = mem.info(r);
        mem.write_local(r, 0, b"heartbeat");
        let got = mem
            .remote_read(peer(9), info.rkey, info.va, 9)
            .expect("default read allowed");
        assert_eq!(&got[..], b"heartbeat");

        mem.set_default_perms(r, Permissions::NONE);
        assert!(mem.remote_read(peer(9), info.rkey, info.va, 9).is_err());
    }

    #[test]
    fn bounds_are_enforced() {
        let mut mem = HostMemory::new(5);
        let r = mem.register(32, Permissions::READ_WRITE);
        let info = mem.info(r);
        assert!(matches!(
            mem.remote_write(peer(1), Qpn(0), info.rkey, info.va + 30, b"abc"),
            Err(AccessError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.remote_read(peer(1), info.rkey, info.va.wrapping_sub(1), 4),
            Err(AccessError::OutOfBounds { .. })
        ));
        assert!(matches!(
            mem.remote_read(peer(1), info.rkey, u64::MAX, 4),
            Err(AccessError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn wrong_key_is_rejected() {
        let mut mem = HostMemory::new(6);
        let r = mem.register(32, Permissions::READ_WRITE);
        let info = mem.info(r);
        let bogus = RKey(info.rkey.0 ^ 1);
        assert_eq!(
            mem.remote_write(peer(1), Qpn(0), bogus, info.va, b"x"),
            Err(AccessError::BadKey(bogus))
        );
    }

    #[test]
    fn effective_perms_reflect_grants() {
        let mut mem = HostMemory::new(7);
        let r = mem.register(8, Permissions::READ);
        mem.grant(r, peer(3), Permissions::READ_WRITE);
        assert_eq!(mem.effective_perms(r, peer(3)), Permissions::READ_WRITE);
        assert_eq!(mem.effective_perms(r, peer(4)), Permissions::READ);
    }

    #[test]
    fn qpn_fencing_blocks_unlisted_queue_pairs() {
        let mut mem = HostMemory::new(9);
        let r = mem.register(64, Permissions::NONE);
        let info = mem.info(r);
        mem.grant(r, peer(1), Permissions::WRITE);
        mem.set_allowed_writer_qpns(r, Some(BTreeSet::from([7u32])));
        assert_eq!(
            mem.remote_write(peer(1), Qpn(8), info.rkey, info.va, b"x"),
            Err(AccessError::WrongQueuePair(Qpn(8)))
        );
        mem.remote_write(peer(1), Qpn(7), info.rkey, info.va, b"x")
            .expect("listed qp may write");
        mem.set_allowed_writer_qpns(r, None);
        mem.remote_write(peer(1), Qpn(8), info.rkey, info.va, b"x")
            .expect("fencing removed");
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn empty_registration_panics() {
        let mut mem = HostMemory::new(8);
        let _ = mem.register(0, Permissions::NONE);
    }
}
