//! Property-based tests of the wire formats: every packet the stack can
//! construct must survive a serialize/parse round trip, and any
//! single-byte tamper of a covered field must be detected.

use bytes::Bytes;
use netsim::Frame;
use proptest::prelude::*;
use rdma::cm::{CmMessage, RejectReason, MAX_REQ_PRIVATE_DATA};
use rdma::{
    Aeth, AethKind, Bth, MacAddr, NakCode, Opcode, ParseError, Psn, Qpn, RKey, Reth, RocePacket,
};
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_opcode_with_payload() -> impl Strategy<Value = (Opcode, usize)> {
    prop_oneof![
        (Just(Opcode::WriteOnly), 0..1024usize),
        (Just(Opcode::WriteFirst), 1..1024usize),
        (Just(Opcode::WriteMiddle), 1..1024usize),
        (Just(Opcode::WriteLast), 1..1024usize),
        (Just(Opcode::ReadRequest), Just(0usize)),
        (Just(Opcode::Acknowledge), Just(0usize)),
        (Just(Opcode::ReadResponseOnly), 0..1024usize),
    ]
}

fn arb_packet() -> impl Strategy<Value = RocePacket> {
    (
        (arb_ip(), arb_ip(), any::<u16>()),
        arb_opcode_with_payload(),
        (any::<u32>(), any::<u32>(), any::<bool>()),
        (any::<u64>(), any::<u32>(), any::<u32>()),
        (0u8..32, any::<u32>(), any::<u8>()),
    )
        .prop_map(
            |(
                (src_ip, dst_ip, sport),
                (opcode, payload_len),
                (qpn, psn, ack_req),
                (va, rkey, dma_len),
                (credits, msn, fill),
            )| {
                RocePacket {
                    src_mac: MacAddr::for_ip(src_ip),
                    dst_mac: MacAddr::for_ip(dst_ip),
                    src_ip,
                    dst_ip,
                    udp_src_port: sport,
                    bth: Bth {
                        opcode,
                        dest_qp: Qpn(qpn & 0x00ff_ffff),
                        psn: Psn::new(psn),
                        ack_req,
                    },
                    reth: opcode.carries_reth().then_some(Reth {
                        va,
                        rkey: RKey(rkey),
                        dma_len,
                    }),
                    aeth: opcode.carries_aeth().then_some(Aeth {
                        kind: AethKind::Ack { credits },
                        msn: msn & 0x00ff_ffff,
                    }),
                    payload: Bytes::from(vec![fill; payload_len]),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn packet_roundtrip(pkt in arb_packet()) {
        let frame = pkt.to_frame();
        let back = RocePacket::parse(&frame).expect("round trip");
        prop_assert_eq!(back, pkt);
    }

    #[test]
    fn wire_len_is_exact(pkt in arb_packet()) {
        prop_assert_eq!(pkt.to_frame().len(), pkt.wire_len());
    }

    #[test]
    fn tampering_transport_bytes_is_detected(
        pkt in arb_packet(),
        tamper_at in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let frame = pkt.to_frame();
        let mut raw = frame.data.to_vec();
        // Tamper strictly inside the ICRC-covered region: BTH onward
        // (excluding the trailing ICRC itself).
        let start = 14 + 20 + 8;
        let end = raw.len() - 4;
        let idx = start + tamper_at.index(end - start);
        raw[idx] ^= 1 << bit;
        let result = RocePacket::parse(&Frame::from(raw));
        // Either the parse fails (ICRC/opcode/syndrome) or — never — it
        // silently yields different content.
        match result {
            Err(_) => {}
            Ok(parsed) => prop_assert_eq!(parsed, pkt, "tamper must not go unnoticed"),
        }
    }

    #[test]
    fn truncation_never_panics(pkt in arb_packet(), cut in any::<prop::sample::Index>()) {
        let frame = pkt.to_frame();
        let n = cut.index(frame.len());
        let result = RocePacket::parse(&Frame::from(frame.data[..n].to_vec()));
        prop_assert!(result.is_err());
    }

    #[test]
    fn cm_message_roundtrip(
        handshake_id in any::<u64>(),
        qpn in any::<u32>(),
        psn in any::<u32>(),
        pd in prop::collection::vec(any::<u8>(), 0..MAX_REQ_PRIVATE_DATA),
        variant in 0u8..4,
    ) {
        let msg = match variant {
            0 => CmMessage::ConnectRequest {
                handshake_id,
                qpn: Qpn(qpn & 0x00ff_ffff),
                start_psn: Psn::new(psn),
                private_data: Bytes::from(pd),
            },
            1 => CmMessage::ConnectReply {
                handshake_id,
                qpn: Qpn(qpn & 0x00ff_ffff),
                start_psn: Psn::new(psn),
                private_data: Bytes::from(pd),
            },
            2 => CmMessage::ReadyToUse { handshake_id },
            _ => CmMessage::ConnectReject {
                handshake_id,
                reason: RejectReason::NotAuthorized,
            },
        };
        prop_assert_eq!(CmMessage::decode(&msg.encode()).expect("round trip"), msg);
    }

    #[test]
    fn psn_advance_distance_inverse(start in any::<u32>(), n in 0u32..(1 << 23)) {
        let a = Psn::new(start);
        let b = a.advance(n);
        prop_assert_eq!(a.distance_to(b), n);
        if n > 0 {
            prop_assert!(a.is_before(b));
            prop_assert!(!b.is_before(a));
        }
    }

    #[test]
    fn psn_ordering_is_antisymmetric(x in any::<u32>(), y in any::<u32>()) {
        let a = Psn::new(x);
        let b = Psn::new(y);
        if a != b {
            // Exactly one direction holds unless they are diametrically
            // opposed in the 24-bit circle.
            let ab = a.is_before(b);
            let ba = b.is_before(a);
            if a.distance_to(b) != (1 << 23) {
                prop_assert_ne!(ab, ba);
            }
        } else {
            prop_assert!(!a.is_before(b));
        }
    }

    #[test]
    fn nak_codes_roundtrip_through_aeth(code_idx in 0usize..4) {
        let codes = [
            NakCode::PsnSequenceError,
            NakCode::InvalidRequest,
            NakCode::RemoteAccessError,
            NakCode::RemoteOperationalError,
        ];
        let code = codes[code_idx];
        let src_ip = Ipv4Addr::new(10, 0, 0, 1);
        let pkt = RocePacket {
            src_mac: MacAddr::for_ip(src_ip),
            dst_mac: MacAddr::for_ip(src_ip),
            src_ip,
            dst_ip: src_ip,
            udp_src_port: 1,
            bth: Bth {
                opcode: Opcode::Acknowledge,
                dest_qp: Qpn(2),
                psn: Psn::new(3),
                ack_req: false,
            },
            reth: None,
            aeth: Some(Aeth {
                kind: AethKind::Nak(code),
                msn: 0,
            }),
            payload: Bytes::new(),
        };
        let back = RocePacket::parse(&pkt.to_frame()).expect("parse");
        prop_assert_eq!(back.aeth.expect("aeth").kind, AethKind::Nak(code));
    }
}

#[test]
fn non_roce_port_is_classified_not_roce() {
    let src_ip = Ipv4Addr::new(10, 0, 0, 1);
    let pkt = RocePacket {
        src_mac: MacAddr::for_ip(src_ip),
        dst_mac: MacAddr::for_ip(src_ip),
        src_ip,
        dst_ip: src_ip,
        udp_src_port: 9,
        bth: Bth {
            opcode: Opcode::WriteOnly,
            dest_qp: Qpn(1),
            psn: Psn::new(0),
            ack_req: true,
        },
        reth: Some(Reth {
            va: 0,
            rkey: RKey(1),
            dma_len: 4,
        }),
        aeth: None,
        payload: Bytes::from_static(b"abcd"),
    };
    let mut raw = pkt.to_frame().data.to_vec();
    raw[14 + 20 + 2] = 0;
    raw[14 + 20 + 3] = 53; // dst port 53: DNS, not RoCE
    assert_eq!(
        RocePacket::parse(&Frame::from(raw)),
        Err(ParseError::NotRoce)
    );
}
