//! Differential properties of the zero-copy fast path: for every packet
//! the stack can construct and every header rewrite the switch can apply,
//! patching the serialized bytes in place must produce *exactly* the frame
//! a full re-serialization would — same IPv4 checksum, same ICRC, byte for
//! byte. This is the guard that lets the switch emit template-patched
//! copies without ever re-reading the payload.

use bytes::Bytes;
use netsim::Frame;
use proptest::prelude::*;
use rdma::wire::{crc32, crc32_combine};
use rdma::{
    patch_frame, Aeth, AethKind, Bth, MacAddr, Opcode, PatchError, Psn, Qpn, RKey, Reth,
    RewriteSet, RocePacket,
};
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

/// Each field independently present or absent (the vendored proptest has
/// no `option::of`, so build it from a coin flip).
fn opt<S: Strategy>(s: S) -> impl Strategy<Value = Option<S::Value>> {
    (any::<bool>(), s).prop_map(|(present, v)| present.then_some(v))
}

fn arb_opcode_with_payload() -> impl Strategy<Value = (Opcode, usize)> {
    prop_oneof![
        (Just(Opcode::WriteOnly), 0..1024usize),
        (Just(Opcode::WriteFirst), 1..1024usize),
        (Just(Opcode::WriteMiddle), 1..1024usize),
        (Just(Opcode::WriteLast), 1..1024usize),
        (Just(Opcode::ReadRequest), Just(0usize)),
        (Just(Opcode::Acknowledge), Just(0usize)),
        (Just(Opcode::ReadResponseOnly), 0..1024usize),
    ]
}

fn arb_packet() -> impl Strategy<Value = RocePacket> {
    (
        (arb_ip(), arb_ip(), any::<u16>()),
        arb_opcode_with_payload(),
        (any::<u32>(), any::<u32>(), any::<bool>()),
        (any::<u64>(), any::<u32>(), any::<u32>()),
        (0u8..32, any::<u32>(), any::<u8>()),
    )
        .prop_map(
            |(
                (src_ip, dst_ip, sport),
                (opcode, payload_len),
                (qpn, psn, ack_req),
                (va, rkey, dma_len),
                (credits, msn, fill),
            )| {
                RocePacket {
                    src_mac: MacAddr::for_ip(src_ip),
                    dst_mac: MacAddr::for_ip(dst_ip),
                    src_ip,
                    dst_ip,
                    udp_src_port: sport,
                    bth: Bth {
                        opcode,
                        dest_qp: Qpn(qpn & 0x00ff_ffff),
                        psn: Psn::new(psn),
                        ack_req,
                    },
                    reth: opcode.carries_reth().then_some(Reth {
                        va,
                        rkey: RKey(rkey),
                        dma_len,
                    }),
                    aeth: opcode.carries_aeth().then_some(Aeth {
                        kind: AethKind::Ack { credits },
                        msn: msn & 0x00ff_ffff,
                    }),
                    payload: Bytes::from(vec![fill; payload_len]),
                }
            },
        )
}

/// An arbitrary rewrite set over every patchable field.
fn arb_rewrite() -> impl Strategy<Value = RewriteSet> {
    (
        (opt(arb_ip()), opt(arb_ip()), opt(arb_ip()), opt(arb_ip())),
        (opt(any::<u16>()), opt(any::<u32>()), opt(any::<u32>())),
        (opt(any::<u64>()), opt(any::<u32>())),
        opt((0u8..32, any::<u32>())),
    )
        .prop_map(
            |((src_mac_ip, dst_mac_ip, src_ip, dst_ip), (sport, qpn, psn), (va, rkey), aeth)| {
                RewriteSet {
                    src_mac: src_mac_ip.map(MacAddr::for_ip),
                    dst_mac: dst_mac_ip.map(MacAddr::for_ip),
                    src_ip,
                    dst_ip,
                    udp_src_port: sport,
                    dest_qp: qpn.map(|q| Qpn(q & 0x00ff_ffff)),
                    psn: psn.map(Psn::new),
                    va,
                    rkey: rkey.map(RKey),
                    aeth: aeth.map(|(credits, msn)| Aeth {
                        kind: AethKind::Ack { credits },
                        msn: msn & 0x00ff_ffff,
                    }),
                }
            },
        )
}

/// Drop RETH/AETH rewrites when the packet's opcode carries no such
/// extension, mirroring what a real switch program can do.
fn constrain(rw: RewriteSet, pkt: &RocePacket) -> RewriteSet {
    RewriteSet {
        va: rw.va.filter(|_| pkt.reth.is_some()),
        rkey: rw.rkey.filter(|_| pkt.reth.is_some()),
        aeth: rw.aeth.filter(|_| pkt.aeth.is_some()),
        ..rw
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole property: patching serialized bytes is byte-identical
    /// to mutating the parsed packet and re-serializing from scratch.
    #[test]
    fn patch_equals_full_reserialization(pkt in arb_packet(), rw in arb_rewrite()) {
        let rw = constrain(rw, &pkt);
        let frame = pkt.to_frame();
        let patched = patch_frame(&frame, &rw).expect("patch");

        let mut expect = pkt.clone();
        rw.apply(&mut expect);
        let full = expect.to_frame();

        prop_assert_eq!(&*patched.data, &*full.data);
        // The patched frame must also parse (valid IPv4 checksum + ICRC)
        // back to exactly the rewritten packet.
        let back = RocePacket::parse(&patched).expect("parse patched");
        prop_assert_eq!(back, expect);
    }

    /// Same property through the template path the switch actually uses.
    #[test]
    fn template_instantiate_equals_full_reserialization(
        pkt in arb_packet(),
        rw in arb_rewrite(),
    ) {
        let rw = constrain(rw, &pkt);
        let template = RocePacket::parse_with_template(&pkt.to_frame()).expect("template");
        let mut target = template.packet().clone();
        rw.apply(&mut target);
        let fast = template.instantiate(&target).expect("instantiate");
        prop_assert_eq!(&*fast.data, &*target.to_frame().data);
    }

    /// An empty rewrite is free: the output is the input, byte for byte,
    /// without touching (or copying) the payload.
    #[test]
    fn empty_rewrite_is_zero_copy(pkt in arb_packet()) {
        let frame = pkt.to_frame();
        let out = patch_frame(&frame, &RewriteSet::default()).expect("patch");
        prop_assert_eq!(&*out.data, &*frame.data);
    }

    /// Structural edits (here: payload growth) are refused by the template
    /// rather than silently mis-patched.
    #[test]
    fn template_refuses_payload_growth(pkt in arb_packet(), extra in 1usize..64) {
        let template = RocePacket::parse_with_template(&pkt.to_frame()).expect("template");
        let mut target = template.packet().clone();
        let mut grown = target.payload.to_vec();
        grown.extend(vec![0xEE; extra]);
        target.payload = Bytes::from(grown);
        prop_assert_eq!(template.instantiate(&target), Err(PatchError::Structural));
    }

    /// Truncated frames never panic the patcher. (It validates structure,
    /// not the ICRC — a cut that only shortens the payload still patches —
    /// so the property is "no panic", and any frame cut into the headers
    /// is refused.)
    #[test]
    fn patch_never_panics_on_garbage(
        pkt in arb_packet(),
        rw in arb_rewrite(),
        cut in any::<prop::sample::Index>(),
    ) {
        let frame = pkt.to_frame();
        let n = cut.index(frame.len());
        let result = patch_frame(&Frame::from(frame.data[..n].to_vec()), &rw);
        if n < rdma::wire::BASE_OVERHEAD {
            prop_assert!(result.is_err());
        }
    }

    /// CRC32 linearity — the identity the whole fast path rests on:
    /// crc(A ‖ B) == combine(crc(A), crc(B), |B|).
    #[test]
    fn crc32_combine_is_concatenation(
        a in prop::collection::vec(any::<u8>(), 0..512),
        b in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let whole = crc32(&[&a[..], &b[..]].concat());
        prop_assert_eq!(crc32_combine(crc32(&a), crc32(&b), b.len()), whole);
    }
}
