//! NIC-level tracing and the unified metrics registry.
//!
//! Covers the observability contract of the transport layer:
//!
//! * a traced run records the WQE-post → wire → ACK chain with the
//!   configured node labels,
//! * tracing is behaviourally invisible — the same run with the tracer
//!   disabled produces identical counters and event counts,
//! * the two go-back-N recovery paths (peer NAK vs. retransmission
//!   timer) increment *distinct* registry metrics, so reports can tell a
//!   mid-stream gap from a lost tail.

use bytes::Bytes;
use netsim::{
    group_scoped, FaultPlan, LinkSpec, MetricsRegistry, RetransmitKind, SimTime, Simulation,
    TraceEvent, TraceHandle, Tracer,
};
use rdma::{
    CmEvent, Completion, Host, HostConfig, HostOps, Permissions, Qpn, RdmaApp, RegionAdvert,
    RegionHandle, WrId,
};
use std::net::Ipv4Addr;

const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Accepts every connection and advertises one writable region.
#[derive(Default)]
struct Server {
    region: Option<RegionHandle>,
}

impl RdmaApp for Server {
    fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
        self.region = Some(ops.register_region(4096, Permissions::WRITE));
    }

    fn on_completion(&mut self, _c: Completion, _ops: &mut HostOps<'_, '_>) {}

    fn on_cm_event(&mut self, ev: CmEvent, ops: &mut HostOps<'_, '_>) {
        if let CmEvent::ConnectRequestReceived {
            handshake_id,
            from_ip,
            from_qpn,
            start_psn,
            ..
        } = ev
        {
            let info = ops.region_info(self.region.expect("registered"));
            let advert = RegionAdvert {
                va: info.va,
                rkey: info.rkey,
                len: info.len,
            };
            ops.accept(handshake_id, from_ip, from_qpn, start_psn, advert.encode());
        }
    }
}

/// Connects at start; the test body posts writes mid-run via `with_ops`.
#[derive(Default)]
struct Client {
    qpn: Option<Qpn>,
    advert: Option<RegionAdvert>,
    completions: Vec<Completion>,
}

impl RdmaApp for Client {
    fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
        ops.connect(SERVER_IP, Bytes::new());
    }

    fn on_cm_event(&mut self, ev: CmEvent, _ops: &mut HostOps<'_, '_>) {
        if let CmEvent::Connected {
            qpn, private_data, ..
        } = ev
        {
            self.qpn = Some(qpn);
            self.advert = Some(RegionAdvert::decode(&private_data).expect("advert"));
        }
    }

    fn on_completion(&mut self, c: Completion, _ops: &mut HostOps<'_, '_>) {
        self.completions.push(c);
    }
}

fn build(tracer: &Tracer) -> (Simulation, netsim::NodeId, netsim::NodeId) {
    let mut sim = Simulation::new(17);
    let mut ccfg = HostConfig::new(CLIENT_IP);
    ccfg.tracer = tracer.labeled("client");
    let mut scfg = HostConfig::new(SERVER_IP);
    scfg.tracer = tracer.labeled("server");
    let c = sim.add_node(Box::new(Host::new(ccfg, Client::default())));
    let s = sim.add_node(Box::new(Host::new(scfg, Server::default())));
    sim.connect(c, s, LinkSpec::default());
    (sim, c, s)
}

fn post_write(sim: &mut Simulation, c: netsim::NodeId, wr: u64, len: usize) {
    sim.with_node(c, |host: &mut Host<Client>, ctx| {
        host.with_ops(ctx, |app, ops| {
            let qpn = app.qpn.expect("connected");
            let advert = app.advert.expect("advert received");
            ops.post_write(
                qpn,
                WrId(wr),
                advert.va,
                advert.rkey,
                Bytes::from(vec![7u8; len]),
            );
        });
    });
}

#[test]
fn traced_write_records_the_post_wire_ack_chain() {
    let handle = TraceHandle::new();
    let (mut sim, c, _s) = build(&handle.tracer(""));
    sim.run_until(SimTime::from_millis(1));
    post_write(&mut sim, c, 5, 64);
    sim.run_until(SimTime::from_millis(2));

    let app = sim.node_ref::<Host<Client>>(c).app();
    assert_eq!(app.completions.len(), 1);
    assert!(app.completions[0].status.is_success());

    let records = handle.records();
    let find = |node: &str, pred: &dyn Fn(&TraceEvent) -> bool| {
        records
            .iter()
            .find(|r| &*r.node == node && pred(&r.event))
            .unwrap_or_else(|| panic!("no matching record for node {node}"))
            .t
    };
    let posted = find("client", &|e| {
        matches!(e, TraceEvent::WqePost { wr_id: 5, .. })
    });
    let tx = find("client", &|e| {
        matches!(
            e,
            TraceEvent::WireTx {
                wr_id: 5,
                npkts: 1,
                ..
            }
        )
    });
    let acked_out = find("server", &|e| matches!(e, TraceEvent::AckTx { .. }));
    let acked_in = find("client", &|e| matches!(e, TraceEvent::AckRx { .. }));
    assert!(posted <= tx, "post precedes wire transmission");
    assert!(tx <= acked_out, "transmission precedes the server ACK");
    assert!(acked_out <= acked_in, "ACK leaves before it arrives");
}

#[test]
fn disabled_tracing_is_behaviourally_invisible() {
    let handle = TraceHandle::new();
    let mut outcomes = Vec::new();
    for tracer in [Tracer::disabled(), handle.tracer("")] {
        let (mut sim, c, s) = build(&tracer);
        sim.run_until(SimTime::from_millis(1));
        post_write(&mut sim, c, 1, 3000);
        sim.run_until(SimTime::from_millis(2));
        outcomes.push((
            sim.events_processed(),
            sim.node_ref::<Host<Client>>(c).stats(),
            sim.node_ref::<Host<Server>>(s).stats(),
        ));
    }
    assert_eq!(outcomes[0], outcomes[1], "tracing must not perturb the run");
    assert!(!handle.is_empty(), "the traced run did record events");
}

/// Drives the NAK recovery path: a partition swallows one write entirely,
/// then a second write arrives with a PSN gap, so the server NAKs and the
/// client go-back-N retransmits — without waiting for its timer.
#[test]
fn nak_recovery_increments_the_nak_metric_only() {
    let handle = TraceHandle::new();
    let (mut sim, c, s) = build(&handle.tracer(""));
    sim.run_until(SimTime::from_millis(1));

    sim.set_fault_plan(
        c,
        netsim::PortId::FIRST,
        FaultPlan::new().partition(SimTime::from_millis(1), SimTime::from_micros(1050)),
    );
    post_write(&mut sim, c, 1, 64); // transmitted into the partition: lost
    sim.run_until(SimTime::from_micros(1060));
    post_write(&mut sim, c, 2, 64); // arrives with a PSN gap: NAKed
    sim.run_until(SimTime::from_millis(3));

    let app = sim.node_ref::<Host<Client>>(c).app();
    assert_eq!(app.completions.len(), 2);
    assert!(app.completions.iter().all(|c| c.status.is_success()));

    let cstats = sim.node_ref::<Host<Client>>(c).stats();
    let sstats = sim.node_ref::<Host<Server>>(s).stats();
    assert!(cstats.nak_retransmits >= 2, "both inflight writes resent");
    assert_eq!(cstats.timeout_retransmits, 0, "the timer never fired");
    assert!(sstats.naks_sent >= 1);

    let mut reg = MetricsRegistry::new();
    cstats.register_into(&mut reg, "rdma.client");
    assert_eq!(reg.counter("rdma.client.retransmit.timeout"), Some(0));
    assert!(reg.counter("rdma.client.retransmit.nak").unwrap() >= 2);
    assert!(handle.records().iter().any(|r| matches!(
        r.event,
        TraceEvent::Retransmit {
            kind: RetransmitKind::Nak,
            ..
        }
    )));
}

/// The registry's group dimension: two consensus groups each have a
/// "host 0", and scoping their stats with [`group_scoped`] must keep
/// every metric distinct — same component index, same metric names,
/// zero key collisions, and per-group values independently readable.
#[test]
fn group_scoped_prefixes_never_collide() {
    let handle = TraceHandle::new();
    let (mut sim, c, s) = build(&handle.tracer(""));
    sim.run_until(SimTime::from_millis(1));
    post_write(&mut sim, c, 1, 64);
    sim.run_until(SimTime::from_millis(2));

    let cstats = sim.node_ref::<Host<Client>>(c).stats();
    let sstats = sim.node_ref::<Host<Server>>(s).stats();

    let mut reg = MetricsRegistry::new();
    // Group 0's host 0 did the work above; group 1's host 0 is the
    // *server's* stats registered under the identical component label.
    cstats.register_into(&mut reg, &group_scoped(0, "host.0"));
    sstats.register_into(&mut reg, &group_scoped(1, "host.0"));

    let raw = reg.names();
    let mut deduped = raw.clone();
    deduped.sort();
    deduped.dedup();
    assert_eq!(deduped.len(), raw.len(), "group prefixes collided");
    assert!(raw.iter().any(|n| n.starts_with("g0.host.0.")));
    assert!(raw.iter().any(|n| n.starts_with("g1.host.0.")));

    // The two groups' values stay independently addressable: each
    // group's counter reads back exactly its own source stats.
    assert!(cstats.packets_sent > 0 && sstats.packets_sent > 0);
    assert_eq!(
        reg.counter("g0.host.0.tx.packets"),
        Some(cstats.packets_sent)
    );
    assert_eq!(
        reg.counter("g1.host.0.tx.packets"),
        Some(sstats.packets_sent)
    );
    assert_eq!(
        reg.counter("g1.host.0.rx.packets"),
        Some(sstats.packets_received)
    );

    // Re-registering the same stats under the *same* group overwrites in
    // place rather than growing the namespace.
    let before = reg.names().len();
    cstats.register_into(&mut reg, &group_scoped(0, "host.0"));
    assert_eq!(reg.names().len(), before);
}

/// Drives the timeout recovery path: the only write is lost and nothing
/// follows it, so only the retransmission timer can recover.
#[test]
fn timeout_recovery_increments_the_timeout_metric_only() {
    let handle = TraceHandle::new();
    let (mut sim, c, s) = build(&handle.tracer(""));
    sim.run_until(SimTime::from_millis(1));

    sim.set_fault_plan(
        c,
        netsim::PortId::FIRST,
        FaultPlan::new().partition(SimTime::from_millis(1), SimTime::from_micros(1080)),
    );
    post_write(&mut sim, c, 1, 64); // lost; recovered by the 131 µs timer
    sim.run_until(SimTime::from_millis(3));

    let app = sim.node_ref::<Host<Client>>(c).app();
    assert_eq!(app.completions.len(), 1);
    assert!(app.completions[0].status.is_success());

    let cstats = sim.node_ref::<Host<Client>>(c).stats();
    let sstats = sim.node_ref::<Host<Server>>(s).stats();
    assert!(cstats.timeout_retransmits >= 1);
    assert_eq!(
        cstats.nak_retransmits, 0,
        "no PSN gap ever reached the server"
    );
    assert_eq!(sstats.naks_sent, 0);

    let mut reg = MetricsRegistry::new();
    cstats.register_into(&mut reg, "rdma.client");
    sstats.register_into(&mut reg, "rdma.server");
    assert!(reg.counter("rdma.client.retransmit.timeout").unwrap() >= 1);
    assert_eq!(reg.counter("rdma.client.retransmit.nak"), Some(0));
    assert!(reg.counter("rdma.server.rx.packets").unwrap() > 0);
    assert!(handle.records().iter().any(|r| matches!(
        r.event,
        TraceEvent::Retransmit {
            kind: RetransmitKind::Timeout,
            ..
        }
    )));
}
