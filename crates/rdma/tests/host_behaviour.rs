//! Host/NIC behaviours beyond the happy path: multi-QP fairness, path
//! migration across ports, receive-side overload and credit collapse.

use bytes::Bytes;
use netsim::{LinkSpec, SimDuration, SimTime, Simulation};
use rdma::{
    CmEvent, Completion, Host, HostConfig, HostOps, Permissions, Qpn, RdmaApp, RegionAdvert,
    RegionHandle, WrId,
};
use std::net::Ipv4Addr;
use tofino::{L3Forwarder, Switch, SwitchConfig};

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 3, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 3, 0, 2);

#[derive(Default)]
struct Acceptor {
    region: Option<RegionHandle>,
    writes: usize,
}

impl RdmaApp for Acceptor {
    fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
        let r = ops.register_region(1 << 20, Permissions::WRITE);
        ops.watch_region(r);
        self.region = Some(r);
    }
    fn on_completion(&mut self, _c: Completion, _ops: &mut HostOps<'_, '_>) {}
    fn on_cm_event(&mut self, ev: CmEvent, ops: &mut HostOps<'_, '_>) {
        if let CmEvent::ConnectRequestReceived {
            handshake_id,
            from_ip,
            from_qpn,
            start_psn,
            ..
        } = ev
        {
            let info = ops.region_info(self.region.expect("registered"));
            ops.accept(
                handshake_id,
                from_ip,
                from_qpn,
                start_psn,
                RegionAdvert {
                    va: info.va,
                    rkey: info.rkey,
                    len: info.len,
                }
                .encode(),
            );
        }
    }
    fn on_remote_write(
        &mut self,
        _r: RegionHandle,
        _o: u64,
        _payload: &Bytes,
        _ops: &mut HostOps<'_, '_>,
    ) {
        self.writes += 1;
    }
}

/// Opens `conns` connections to the same server and pumps writes on all
/// of them.
struct MultiConn {
    conns: usize,
    per_conn: u64,
    qpns: Vec<Qpn>,
    completions_per_qp: std::collections::BTreeMap<u32, u64>,
    completion_order: Vec<u32>,
}

impl MultiConn {
    fn new(conns: usize, per_conn: u64) -> Self {
        MultiConn {
            conns,
            per_conn,
            qpns: Vec::new(),
            completions_per_qp: Default::default(),
            completion_order: Vec::new(),
        }
    }
}

impl RdmaApp for MultiConn {
    fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
        for _ in 0..self.conns {
            ops.connect(B_IP, Bytes::new());
        }
    }
    fn on_cm_event(&mut self, ev: CmEvent, ops: &mut HostOps<'_, '_>) {
        if let CmEvent::Connected {
            qpn, private_data, ..
        } = ev
        {
            self.qpns.push(qpn);
            let advert = RegionAdvert::decode(&private_data).expect("advert");
            for i in 0..self.per_conn {
                ops.post_write(
                    qpn,
                    WrId((u64::from(qpn.masked()) << 32) | i),
                    advert.va + i * 64,
                    advert.rkey,
                    Bytes::from(vec![1u8; 64]),
                );
            }
        }
    }
    fn on_completion(&mut self, c: Completion, _ops: &mut HostOps<'_, '_>) {
        if c.status.is_success() {
            *self.completions_per_qp.entry(c.qpn.masked()).or_default() += 1;
            self.completion_order.push(c.qpn.masked());
        }
    }
}

#[test]
fn nic_serves_queue_pairs_fairly() {
    let mut sim = Simulation::new(12);
    let a = sim.add_node(Box::new(Host::new(
        HostConfig::new(A_IP),
        MultiConn::new(4, 200),
    )));
    let b = sim.add_node(Box::new(Host::new(
        HostConfig::new(B_IP),
        Acceptor::default(),
    )));
    sim.connect(a, b, LinkSpec::default());
    sim.run_until(SimTime::from_millis(10));

    let app = sim.node_ref::<Host<MultiConn>>(a).app();
    assert_eq!(app.completions_per_qp.len(), 4);
    for (&qpn, &n) in &app.completions_per_qp {
        assert_eq!(n, 200, "qp {qpn} completed everything");
    }
    // Round-robin service: within any window of the completion stream,
    // no queue pair should dominate. Check the first half versus the
    // second half: every QP must appear in both.
    let half = app.completion_order.len() / 2;
    for &qpn in app.completions_per_qp.keys() {
        assert!(
            app.completion_order[..half].contains(&qpn),
            "qp {qpn} starved in the first half"
        );
        assert!(
            app.completion_order[half..].contains(&qpn),
            "qp {qpn} starved in the second half"
        );
    }
}

#[test]
fn connections_migrate_to_the_arrival_path() {
    // A is dual-homed via two switches; B likewise. A connects over
    // fabric 1; when A switches its active port and reconnects, the new
    // connection rides fabric 2 end to end (responses follow the arrival
    // port).
    struct LateConn {
        started: bool,
        acked: u64,
    }
    impl RdmaApp for LateConn {
        fn on_start(&mut self, _ops: &mut HostOps<'_, '_>) {}
        fn on_cm_event(&mut self, ev: CmEvent, ops: &mut HostOps<'_, '_>) {
            if let CmEvent::Connected {
                qpn, private_data, ..
            } = ev
            {
                let advert = RegionAdvert::decode(&private_data).expect("advert");
                ops.post_write(
                    qpn,
                    WrId(1),
                    advert.va,
                    advert.rkey,
                    Bytes::from(vec![9u8; 64]),
                );
            }
        }
        fn on_completion(&mut self, c: Completion, _ops: &mut HostOps<'_, '_>) {
            if c.status.is_success() {
                self.acked += 1;
            }
        }
        fn on_timer(&mut self, _t: u64, ops: &mut HostOps<'_, '_>) {
            self.started = true;
            ops.connect(B_IP, Bytes::new());
        }
    }

    let mut sim = Simulation::new(13);
    let a = sim.add_node(Box::new(Host::new(
        HostConfig::new(A_IP),
        LateConn {
            started: false,
            acked: 0,
        },
    )));
    let b = sim.add_node(Box::new(Host::new(
        HostConfig::new(B_IP),
        Acceptor::default(),
    )));
    let sw1 = sim.add_node(Box::new(Switch::new(
        SwitchConfig::tofino1(Ipv4Addr::new(10, 3, 0, 101)),
        2,
        L3Forwarder,
    )));
    let sw2 = sim.add_node(Box::new(Switch::new(
        SwitchConfig::tofino1(Ipv4Addr::new(10, 3, 0, 102)),
        2,
        L3Forwarder,
    )));
    // Port 0 of each host → sw1, port 1 → sw2.
    let (_, s1a) = sim.connect(a, sw1, LinkSpec::default());
    let (_, s1b) = sim.connect(b, sw1, LinkSpec::default());
    let (_, s2a) = sim.connect(a, sw2, LinkSpec::default());
    let (_, s2b) = sim.connect(b, sw2, LinkSpec::default());
    sim.node_mut::<Switch<L3Forwarder>>(sw1)
        .add_route(A_IP, s1a);
    sim.node_mut::<Switch<L3Forwarder>>(sw1)
        .add_route(B_IP, s1b);
    sim.node_mut::<Switch<L3Forwarder>>(sw2)
        .add_route(A_IP, s2a);
    sim.node_mut::<Switch<L3Forwarder>>(sw2)
        .add_route(B_IP, s2b);

    // Kill fabric 1 outright: if the connection tried to ride it, it
    // could never complete.
    sim.set_node_down(sw1, true);
    // Flip A to the backup port, then connect via an app action.
    sim.with_node::<Host<LateConn>, _>(a, |host, ctx| {
        host.with_ops(ctx, |_app, ops| {
            ops.set_active_port(netsim::PortId::from_index(1));
            ops.set_app_timer(SimDuration::from_micros(10), 1);
        });
    });
    sim.run_until(SimTime::from_millis(10));

    let app = sim.node_ref::<Host<LateConn>>(a).app();
    assert!(app.started);
    assert_eq!(app.acked, 1, "write completed entirely over fabric 2");
    let writes = sim.node_ref::<Host<Acceptor>>(b).app().writes;
    assert_eq!(writes, 1);
}

#[test]
fn receiver_overload_collapses_credits_and_throttles() {
    // A receiver with a deliberately slow RX engine and small buffer:
    // the advertised credits drop under load, and the sender's window
    // tightens (no livelock, everything still completes).
    struct Pump {
        total: u64,
        acked: u64,
        min_credits: u8,
    }
    impl RdmaApp for Pump {
        fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
            ops.connect(B_IP, Bytes::new());
        }
        fn on_cm_event(&mut self, ev: CmEvent, ops: &mut HostOps<'_, '_>) {
            if let CmEvent::Connected {
                qpn, private_data, ..
            } = ev
            {
                let advert = RegionAdvert::decode(&private_data).expect("advert");
                for i in 0..self.total {
                    ops.post_write(
                        qpn,
                        WrId(i),
                        advert.va,
                        advert.rkey,
                        Bytes::from(vec![1u8; 64]),
                    );
                }
            }
        }
        fn on_completion(&mut self, c: Completion, _ops: &mut HostOps<'_, '_>) {
            if c.status.is_success() {
                self.acked += 1;
                self.min_credits = self.min_credits.min(c.credits);
            }
        }
    }

    let mut sim = Simulation::new(14);
    let a = sim.add_node(Box::new(Host::new(
        HostConfig::new(A_IP),
        Pump {
            total: 500,
            acked: 0,
            min_credits: 31,
        },
    )));
    let mut slow = HostConfig::new(B_IP);
    slow.rx_capacity = 4;
    slow.nic_rx_cost = netsim::SimDuration::from_micros(2); // ~0.5 Mpps NIC
    let b = sim.add_node(Box::new(Host::new(slow, Acceptor::default())));
    sim.connect(a, b, LinkSpec::default());
    sim.run_until(SimTime::from_millis(50));

    let app = sim.node_ref::<Host<Pump>>(a).app();
    assert_eq!(app.acked, 500, "flow control must not deadlock");
    assert!(
        app.min_credits <= 1,
        "overloaded receiver must advertise scarcity, saw {}",
        app.min_credits
    );
    assert_eq!(sim.node_ref::<Host<Acceptor>>(b).app().writes, 500);
}
