//! Differential properties of the per-packet hot-path kernels: every
//! fast kernel must agree *exactly* with the slow, obviously-correct
//! implementation it replaced.
//!
//! * the slice-by-8 and two-lane CRC kernels against a bit-at-a-time
//!   reference,
//! * ACK emission via template patching against full re-serialization,
//! * the borrowed-view parse against the owned-packet parse, including
//!   accept/reject parity on corrupted frames.

use bytes::Bytes;
use netsim::Frame;
use proptest::prelude::*;
use rdma::wire::{crc32, crc32_slice8_raw, crc32_two_lane_raw};
use rdma::{
    Aeth, AethKind, Bth, MacAddr, NakCode, Opcode, PacketTemplate, Psn, Qpn, RKey, Reth, RocePacket,
};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------------
// CRC kernels vs the bit-at-a-time reference
// ---------------------------------------------------------------------

/// The textbook reflected CRC-32 (IEEE), one bit per step, operating on
/// the raw (pre-inversion) register like the table kernels do. Slow and
/// unarguable — the oracle for both fast kernels.
fn crc32_bitwise_raw(init: u32, data: &[u8]) -> u32 {
    let mut c = init;
    for &b in data {
        c ^= u32::from(b);
        for _ in 0..8 {
            c = if c & 1 != 0 {
                (c >> 1) ^ 0xedb8_8320
            } else {
                c >> 1
            };
        }
    }
    c
}

/// Deterministic pseudo-random fill so the exhaustive length sweep does
/// not depend on proptest's generator.
fn lcg_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 56) as u8
        })
        .collect()
}

/// Every length 0..=1024 (covering the empty input, the sub-8-byte tail
/// loop, the slice-by-8 main loop, and both sides of the two-lane split)
/// agrees with the reference on both kernels.
#[test]
fn crc_kernels_match_reference_for_all_lengths_0_to_1024() {
    for len in 0..=1024usize {
        let data = lcg_bytes(len, 0x9e37_79b9_7f4a_7c15 ^ len as u64);
        let oracle = crc32_bitwise_raw(0xffff_ffff, &data);
        assert_eq!(
            crc32_slice8_raw(0xffff_ffff, &data),
            oracle,
            "slice-by-8 diverges at len {len}"
        );
        assert_eq!(
            crc32_two_lane_raw(0xffff_ffff, &data),
            oracle,
            "two-lane diverges at len {len}"
        );
        // The public finalized form wraps the same kernels.
        assert_eq!(
            crc32(&data),
            !oracle,
            "finalized crc32 diverges at len {len}"
        );
    }
}

proptest! {
    /// Random contents and random (non-canonical) initial registers: the
    /// kernels are exact drop-ins for the reference at any register
    /// state, which is what lets `crc32_combine` stitch them.
    #[test]
    fn crc_kernels_match_reference_on_random_input(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        init in any::<u32>(),
    ) {
        let oracle = crc32_bitwise_raw(init, &data);
        prop_assert_eq!(crc32_slice8_raw(init, &data), oracle);
        prop_assert_eq!(crc32_two_lane_raw(init, &data), oracle);
    }
}

// ---------------------------------------------------------------------
// ACK emission: template patch vs full re-serialization
// ---------------------------------------------------------------------

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_aeth() -> impl Strategy<Value = Aeth> {
    let kind = prop_oneof![
        (0u8..32).prop_map(|credits| AethKind::Ack { credits }),
        Just(AethKind::Nak(NakCode::PsnSequenceError)),
        Just(AethKind::Nak(NakCode::RemoteAccessError)),
        Just(AethKind::Nak(NakCode::RemoteOperationalError)),
    ];
    // MSN is a 24-bit wire field: keep generated values representable so
    // round-trip equality is exact.
    (kind, 0u32..1 << 24).prop_map(|(kind, msn)| Aeth { kind, msn })
}

/// An ACK packet the host's responder would build: Acknowledge opcode,
/// AETH, empty payload.
fn ack_packet(src_ip: Ipv4Addr, dst_ip: Ipv4Addr, psn: u32, aeth: Aeth) -> RocePacket {
    RocePacket {
        src_mac: MacAddr::for_ip(src_ip),
        dst_mac: MacAddr::for_ip(dst_ip),
        src_ip,
        dst_ip,
        udp_src_port: 0xC007,
        bth: Bth {
            opcode: Opcode::Acknowledge,
            dest_qp: Qpn(0x42),
            psn: Psn::new(psn),
            ack_req: false,
        },
        reth: None,
        aeth: Some(aeth),
        payload: Bytes::new(),
    }
}

proptest! {
    /// Emitting an ACK by patching a cached template produces exactly the
    /// bytes a full serialization of the target packet would — the
    /// equivalence `HostCore::build_ack_frame` relies on to skip the
    /// serializer after the first ACK on a queue pair.
    #[test]
    fn ack_template_patch_equals_full_serialization(
        base_ip in arb_ip(),
        dst_ip in arb_ip(),
        base_psn in any::<u32>(),
        base_aeth in arb_aeth(),
        new_dst_ip in arb_ip(),
        new_psn in any::<u32>(),
        new_aeth in arb_aeth(),
    ) {
        let base = ack_packet(base_ip, dst_ip, base_psn, base_aeth);
        let template = PacketTemplate::from_packet(&base);
        // The template's own frame is the full serialization of the base.
        prop_assert_eq!(&template.frame().data[..], &base.to_frame().data[..]);

        // Re-target the way the responder does: destination, PSN, AETH.
        let mut target = base.clone();
        target.dst_mac = MacAddr::for_ip(new_dst_ip);
        target.dst_ip = new_dst_ip;
        target.bth.psn = Psn::new(new_psn);
        target.aeth = Some(new_aeth);

        let patched = template.instantiate(&target);
        prop_assert!(patched.is_ok(), "ACK retarget must be patchable: {patched:?}");
        let patched = patched.unwrap();
        let full = target.to_frame();
        prop_assert_eq!(
            &patched.data[..],
            &full.data[..],
            "patched ACK bytes differ from full serialization"
        );
        // Both decode back to the target packet.
        prop_assert_eq!(RocePacket::parse(&Frame::from(patched.data.to_vec())).unwrap(), target);
    }
}

// ---------------------------------------------------------------------
// View parse vs owned parse
// ---------------------------------------------------------------------

fn arb_opcode_with_payload() -> impl Strategy<Value = (Opcode, usize)> {
    prop_oneof![
        (Just(Opcode::WriteOnly), 0..512usize),
        (Just(Opcode::WriteFirst), 1..512usize),
        (Just(Opcode::WriteMiddle), 1..512usize),
        (Just(Opcode::WriteLast), 1..512usize),
        (Just(Opcode::ReadRequest), Just(0usize)),
        (Just(Opcode::Acknowledge), Just(0usize)),
        (Just(Opcode::SendOnly), 0..512usize),
        (Just(Opcode::ReadResponseOnly), 0..512usize),
    ]
}

fn arb_packet() -> impl Strategy<Value = RocePacket> {
    (
        (arb_ip(), arb_ip(), any::<u16>()),
        arb_opcode_with_payload(),
        (any::<u32>(), any::<u32>(), any::<bool>()),
        (any::<u64>(), any::<u32>(), any::<u32>()),
        (arb_aeth(), any::<u8>()),
    )
        .prop_map(
            |(
                (src_ip, dst_ip, sport),
                (opcode, payload_len),
                (qpn, psn, ack_req),
                (va, rkey, dma_len),
                (aeth, fill),
            )| {
                RocePacket {
                    src_mac: MacAddr::for_ip(src_ip),
                    dst_mac: MacAddr::for_ip(dst_ip),
                    src_ip,
                    dst_ip,
                    udp_src_port: sport,
                    bth: Bth {
                        opcode,
                        dest_qp: Qpn(qpn),
                        psn: Psn::new(psn),
                        ack_req,
                    },
                    reth: opcode.carries_reth().then_some(Reth {
                        va,
                        rkey: RKey(rkey),
                        dma_len,
                    }),
                    aeth: opcode.carries_aeth().then_some(aeth),
                    payload: Bytes::from(
                        (0..payload_len)
                            .map(|i| fill.wrapping_add(i as u8))
                            .collect::<Vec<u8>>(),
                    ),
                }
            },
        )
}

proptest! {
    /// On every frame the serializer can produce, the borrowed-header
    /// view reports exactly what the owned parse decodes — field by
    /// field, including payload bytes.
    #[test]
    fn parse_view_agrees_with_parse_on_valid_frames(pkt in arb_packet()) {
        let frame = pkt.to_frame();
        let owned = RocePacket::parse(&frame).expect("serializer output parses");
        let view = RocePacket::parse_view(&frame).expect("serializer output views");
        prop_assert_eq!(view.src_mac(), owned.src_mac);
        prop_assert_eq!(view.dst_mac(), owned.dst_mac);
        prop_assert_eq!(view.src_ip(), owned.src_ip);
        prop_assert_eq!(view.dst_ip(), owned.dst_ip);
        prop_assert_eq!(view.udp_src_port(), owned.udp_src_port);
        prop_assert_eq!(view.opcode(), owned.bth.opcode);
        prop_assert_eq!(view.dest_qp(), owned.bth.dest_qp);
        prop_assert_eq!(view.psn(), owned.bth.psn);
        prop_assert_eq!(view.ack_req(), owned.bth.ack_req);
        prop_assert_eq!(view.reth(), owned.reth);
        prop_assert_eq!(view.aeth(), owned.aeth);
        prop_assert_eq!(view.payload_len(), owned.payload.len());
        prop_assert_eq!(&view.payload()[..], &owned.payload[..]);
        // And the materialized forms round-trip identically.
        prop_assert_eq!(view.to_packet(), owned);
    }

    /// Accept/reject parity: a corrupted frame is rejected by the view
    /// parse iff the owned parse rejects it — the view path must never
    /// admit a packet the full parser would have dropped (or vice versa).
    #[test]
    fn parse_view_agrees_with_parse_on_corrupted_frames(
        pkt in arb_packet(),
        corrupt_at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
        truncate_to in any::<prop::sample::Index>(),
        mode in 0u8..2,
    ) {
        let good = pkt.to_frame();
        let mut bytes = good.data.to_vec();
        match mode {
            0 => {
                let i = corrupt_at.index(bytes.len());
                bytes[i] ^= flip;
            }
            _ => {
                let keep = truncate_to.index(bytes.len());
                bytes.truncate(keep);
            }
        }
        // An unverified frame: both parsers re-check everything.
        let frame = Frame::from(bytes);
        let owned = RocePacket::parse(&frame);
        let viewed = RocePacket::parse_view(&frame);
        match (owned, viewed) {
            (Ok(o), Ok(v)) => prop_assert_eq!(v.to_packet(), o),
            (Err(eo), Err(ev)) => prop_assert_eq!(ev, eo, "different rejection reasons"),
            (o, v) => prop_assert!(false, "parse {o:?} vs parse_view accept mismatch: {v:?}"),
        }
    }
}
