//! Property tests for queue-pair recovery: a requester and a responder
//! QP talk across a model channel that randomly drops and reorders
//! packets (both directions). Whatever the channel does, the protocol
//! invariants must hold:
//!
//! * **PSN monotonicity** — fresh (non-retransmitted) packets carry
//!   strictly consecutive sequence numbers,
//! * **exactly-once completion** — no work request completes twice, and
//!   completions surface in post order (RC ordering),
//! * **conservation** — at every step, `posted = completed + pending +
//!   inflight`; nothing is lost or invented,
//! * **liveness** — once the channel heals, everything drains.

use bytes::Bytes;
use netsim::{SimDuration, SimTime};
use proptest::prelude::*;
use rdma::qp::{RecoveryAction, RecvVerdict};
use rdma::{NakCode, PacketPlan, PeerInfo, Psn, Qpn, QueuePair, RKey, WorkRequest, WrId};
use std::net::Ipv4Addr;

const MTU: usize = 256;
const WINDOW: usize = 4;
const STEP: SimDuration = SimDuration::from_micros(10);
const TIMEOUT: SimDuration = SimDuration::from_micros(50);
const RETRY_LIMIT: u32 = 1000; // loss is transient; never go fatal
const HEAL_STEP: u64 = 2_000;
const MAX_STEPS: u64 = 20_000;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn chance(state: &mut u64, pct: u32) -> bool {
    (splitmix(state) % 100) < u64::from(pct)
}

enum BackMsg {
    Ack { psn: Psn, credits: u8 },
    Nak,
}

/// A lossy, reordering channel: each message is either dropped or
/// assigned a delivery step (possibly behind later traffic).
struct Channel<T> {
    queue: Vec<(u64, T)>,
}

impl<T> Channel<T> {
    fn new() -> Self {
        Channel { queue: Vec::new() }
    }

    fn send(&mut self, now: u64, msg: T, rng: &mut u64, loss_pct: u32, reorder_pct: u32) {
        if chance(rng, loss_pct) {
            return;
        }
        let delay = if chance(rng, reorder_pct) {
            2 + splitmix(rng) % 6
        } else {
            1
        };
        self.queue.push((now + delay, msg));
    }

    fn deliver_due(&mut self, now: u64) -> Vec<T> {
        let mut due = Vec::new();
        let mut rest = Vec::new();
        for (at, msg) in self.queue.drain(..) {
            if at <= now {
                due.push(msg);
            } else {
                rest.push((at, msg));
            }
        }
        self.queue = rest;
        due
    }
}

fn rts_pair() -> (QueuePair, QueuePair) {
    let req_ip = Ipv4Addr::new(10, 0, 0, 1);
    let resp_ip = Ipv4Addr::new(10, 0, 0, 2);
    let mut req = QueuePair::new(Qpn(4), Psn::new(0x00ff_fff0), MTU, WINDOW);
    let mut resp = QueuePair::new(Qpn(9), Psn::new(7), MTU, WINDOW);
    req.begin_connect();
    req.establish_requester(PeerInfo {
        ip: resp_ip,
        qpn: Qpn(9),
        start_psn: Psn::new(7),
    });
    resp.establish_responder(PeerInfo {
        ip: req_ip,
        qpn: Qpn(4),
        // The requester's start PSN sits just below the 24-bit wrap so
        // recovery is also exercised across the wraparound.
        start_psn: Psn::new(0x00ff_fff0),
    });
    resp.promote_to_rts();
    (req, resp)
}

/// Runs one seeded channel schedule and checks every invariant.
fn run_schedule(seed: u64, loss_pct: u32, reorder_pct: u32, sizes: &[usize]) {
    let (mut req, mut resp) = rts_pair();
    for (i, &len) in sizes.iter().enumerate() {
        req.post(WorkRequest::Write {
            wr_id: WrId(i as u64),
            remote_va: 0x1000,
            rkey: RKey(42),
            data: Bytes::from(vec![(i % 251) as u8; len]),
        })
        .expect("queue pair is ready to send");
    }

    let mut rng = seed;
    let mut fwd: Channel<PacketPlan> = Channel::new();
    let mut back: Channel<BackMsg> = Channel::new();
    let mut completed: Vec<WrId> = Vec::new();
    let mut last_fresh_psn: Option<Psn> = None;
    let mut last_executed: Option<Psn> = None;

    for step in 0..MAX_STEPS {
        let (loss, reorder) = if step < HEAL_STEP {
            (loss_pct, reorder_pct)
        } else {
            (0, 0) // the channel heals; the tail must drain
        };
        let now = SimTime::ZERO + STEP * step;

        // Requester: emit fresh messages while the window allows.
        while let Some(packets) = req.next_message(now) {
            for p in &packets {
                if let Some(prev) = last_fresh_psn {
                    assert_eq!(
                        prev.distance_to(p.psn),
                        1,
                        "fresh packets must carry consecutive PSNs"
                    );
                }
                last_fresh_psn = Some(p.psn);
            }
            for p in packets {
                fwd.send(step, p, &mut rng, loss, reorder);
            }
        }

        // Responder: sequence whatever arrives.
        for p in fwd.deliver_due(step) {
            match resp.receive_sequence(p.psn, p.opcode, p.ack_req) {
                RecvVerdict::Execute { ack_due } => {
                    last_executed = Some(p.psn);
                    if ack_due {
                        back.send(
                            step,
                            BackMsg::Ack {
                                psn: p.psn,
                                credits: 16,
                            },
                            &mut rng,
                            loss,
                            reorder,
                        );
                    }
                }
                RecvVerdict::Duplicate => {
                    // Re-acknowledge the newest executed PSN so the
                    // requester can make progress past the overlap.
                    if let Some(psn) = last_executed {
                        back.send(
                            step,
                            BackMsg::Ack { psn, credits: 16 },
                            &mut rng,
                            loss,
                            reorder,
                        );
                    }
                }
                RecvVerdict::OutOfOrder => {
                    back.send(step, BackMsg::Nak, &mut rng, loss, reorder);
                }
            }
        }

        // Requester: absorb acknowledgements and NAKs.
        for msg in back.deliver_due(step) {
            match msg {
                BackMsg::Ack { psn, credits } => {
                    let done = req.handle_ack(psn, credits);
                    if done.is_empty() {
                        req.note_progress(psn, now);
                    }
                    for (wr_id, is_read) in done {
                        assert!(!is_read, "only writes are posted");
                        assert!(
                            !completed.contains(&wr_id),
                            "work request {wr_id:?} completed twice"
                        );
                        completed.push(wr_id);
                    }
                }
                BackMsg::Nak => match req.handle_nak(NakCode::PsnSequenceError) {
                    RecoveryAction::None => {}
                    RecoveryAction::Retransmit(pkts) => {
                        for p in pkts {
                            fwd.send(step, p, &mut rng, loss, reorder);
                        }
                    }
                    RecoveryAction::Fatal(_) => {
                        panic!("sequence NAKs must never be fatal")
                    }
                },
            }
        }

        // Retransmission timer.
        match req.check_timeout(now, TIMEOUT, RETRY_LIMIT) {
            RecoveryAction::None => {}
            RecoveryAction::Retransmit(pkts) => {
                for p in pkts {
                    fwd.send(step, p, &mut rng, loss, reorder);
                }
            }
            RecoveryAction::Fatal(_) => {
                panic!("retry limit is effectively unbounded here")
            }
        }

        // Conservation: every posted request is exactly one of
        // completed / pending / inflight.
        assert_eq!(
            completed.len() + req.pending_len() + req.inflight_len(),
            sizes.len(),
            "work requests must be conserved at step {step}"
        );

        if completed.len() == sizes.len() {
            break;
        }
    }

    // Liveness after heal, exactly-once, and RC ordering.
    assert_eq!(
        completed.len(),
        sizes.len(),
        "every write must complete once the channel heals"
    );
    let expected: Vec<WrId> = (0..sizes.len() as u64).map(WrId).collect();
    assert_eq!(
        completed, expected,
        "completions must surface in post order"
    );
    assert_eq!(req.inflight_len(), 0);
    assert_eq!(req.pending_len(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn qp_recovery_invariants_hold_under_random_loss_and_reorder(
        seed in any::<u64>(),
        loss_pct in 0u32..40,
        reorder_pct in 0u32..40,
        sizes in prop::collection::vec(1usize..1000, 1..10),
    ) {
        run_schedule(seed, loss_pct, reorder_pct, &sizes);
    }
}

#[test]
fn heavy_loss_with_multi_mtu_writes_still_drains() {
    // A deterministic worst-ish case: 35% loss, 30% reorder, writes up
    // to four MTUs — exercises go-back-N, duplicate absorption, and the
    // timeout path across the PSN wrap.
    run_schedule(0x0BAD_5EED, 35, 30, &[700, 64, 1000, 3, 512, 900, 1, 256]);
}
