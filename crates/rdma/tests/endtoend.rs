//! End-to-end tests of the RDMA stack: two hosts on a direct link.

use bytes::Bytes;
use netsim::{LinkSpec, SimDuration, SimTime, Simulation};
use rdma::{
    CmEvent, Completion, CompletionStatus, Host, HostConfig, HostOps, NakCode, Permissions, Qpn,
    RKey, RdmaApp, RegionAdvert, RegionHandle, RejectReason, WrId,
};
use std::net::Ipv4Addr;

const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// A server that exposes one region and accepts every connection,
/// advertising the region in the reply's private data.
#[derive(Default)]
struct Server {
    region: Option<RegionHandle>,
    region_len: usize,
    perms: Permissions,
    writes_seen: Vec<(u64, usize)>,
    established: u32,
    reject_all: bool,
}

impl Server {
    fn new(region_len: usize, perms: Permissions) -> Self {
        Server {
            region_len,
            perms,
            ..Server::default()
        }
    }
}

impl RdmaApp for Server {
    fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
        let region = ops.register_region(self.region_len, self.perms);
        ops.watch_region(region);
        // A recognizable pattern for read tests.
        let pattern: Vec<u8> = (0..16u8).collect();
        ops.write_local(region, 0, &pattern);
        self.region = Some(region);
    }

    fn on_completion(&mut self, _c: Completion, _ops: &mut HostOps<'_, '_>) {}

    fn on_cm_event(&mut self, ev: CmEvent, ops: &mut HostOps<'_, '_>) {
        match ev {
            CmEvent::ConnectRequestReceived {
                handshake_id,
                from_ip,
                from_qpn,
                start_psn,
                ..
            } => {
                if self.reject_all {
                    ops.reject(handshake_id, from_ip, RejectReason::NotAuthorized);
                    return;
                }
                let region = self.region.expect("registered at start");
                let info = ops.region_info(region);
                let advert = RegionAdvert {
                    va: info.va,
                    rkey: info.rkey,
                    len: info.len,
                };
                ops.accept(handshake_id, from_ip, from_qpn, start_psn, advert.encode());
            }
            CmEvent::Established { .. } => self.established += 1,
            _ => {}
        }
    }

    fn on_remote_write(
        &mut self,
        _region: RegionHandle,
        offset: u64,
        payload: &Bytes,
        _ops: &mut HostOps<'_, '_>,
    ) {
        self.writes_seen.push((offset, payload.len()));
    }
}

/// A client that connects, then runs a list of writes/reads.
struct Client {
    server_ip: Ipv4Addr,
    payloads: Vec<Bytes>,
    read_len: Option<u32>,
    qpn: Option<Qpn>,
    advert: Option<RegionAdvert>,
    scratch: Option<RegionHandle>,
    completions: Vec<Completion>,
    connected_at: Option<SimTime>,
    rejected: bool,
    bogus_rkey: bool,
}

impl Client {
    fn writes(server_ip: Ipv4Addr, payloads: Vec<Bytes>) -> Self {
        Client {
            server_ip,
            payloads,
            read_len: None,
            qpn: None,
            advert: None,
            scratch: None,
            completions: Vec::new(),
            connected_at: None,
            rejected: false,
            bogus_rkey: false,
        }
    }
}

impl RdmaApp for Client {
    fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
        self.scratch = Some(ops.register_region(4096, Permissions::NONE));
        ops.connect(self.server_ip, Bytes::new());
    }

    fn on_cm_event(&mut self, ev: CmEvent, ops: &mut HostOps<'_, '_>) {
        match ev {
            CmEvent::Connected {
                qpn, private_data, ..
            } => {
                self.qpn = Some(qpn);
                self.connected_at = Some(ops.now());
                let advert = RegionAdvert::decode(&private_data).expect("server advert");
                self.advert = Some(advert);
                let rkey = if self.bogus_rkey {
                    RKey(advert.rkey.0 ^ 0xdead)
                } else {
                    advert.rkey
                };
                for (i, p) in self.payloads.iter().enumerate() {
                    ops.post_write(qpn, WrId(i as u64), advert.va, rkey, p.clone());
                }
                if let Some(len) = self.read_len {
                    ops.post_read(
                        qpn,
                        WrId(900),
                        advert.va,
                        advert.rkey,
                        len,
                        self.scratch.expect("registered"),
                        0,
                    );
                }
            }
            CmEvent::Rejected { .. } => self.rejected = true,
            _ => {}
        }
    }

    fn on_completion(&mut self, c: Completion, _ops: &mut HostOps<'_, '_>) {
        self.completions.push(c);
    }
}

fn two_host_sim(server: Server, client: Client) -> (Simulation, netsim::NodeId, netsim::NodeId) {
    let mut sim = Simulation::new(17);
    let c = sim.add_node(Box::new(Host::new(HostConfig::new(CLIENT_IP), client)));
    let s = sim.add_node(Box::new(Host::new(HostConfig::new(SERVER_IP), server)));
    sim.connect(c, s, LinkSpec::default());
    (sim, c, s)
}

#[test]
fn connect_write_ack_completes() {
    let server = Server::new(4096, Permissions::NONE);
    let mut server_grant = server;
    // Grant by default perms instead: write-enabled region.
    server_grant.perms = Permissions::WRITE;
    let client = Client::writes(SERVER_IP, vec![Bytes::from(vec![7u8; 64])]);
    let (mut sim, c, s) = two_host_sim(server_grant, client);
    sim.run_until(SimTime::from_millis(1));

    let client = sim.node_ref::<Host<Client>>(c).app();
    assert!(client.connected_at.is_some(), "handshake completed");
    assert_eq!(client.completions.len(), 1);
    assert_eq!(client.completions[0].status, CompletionStatus::Success);

    let server = sim.node_ref::<Host<Server>>(s).app();
    assert_eq!(server.established, 1);
    assert_eq!(server.writes_seen, vec![(0, 64)]);
}

#[test]
fn multi_packet_write_lands_contiguously() {
    // 3000 B > 2 MTUs: first/middle/last segmentation, one ACK.
    let payload: Vec<u8> = (0..3000u32).map(|i| (i % 251) as u8).collect();
    let server = Server::new(8192, Permissions::WRITE);
    let client = Client::writes(SERVER_IP, vec![Bytes::from(payload.clone())]);
    let (mut sim, c, s) = two_host_sim(server, client);
    sim.run_until(SimTime::from_millis(1));

    let client_app = sim.node_ref::<Host<Client>>(c).app();
    assert_eq!(
        client_app.completions.len(),
        1,
        "one completion per message"
    );
    assert!(client_app.completions[0].status.is_success());
    // Server saw three packet-level writes covering the whole payload.
    let server_app = sim.node_ref::<Host<Server>>(s).app();
    let total: usize = server_app.writes_seen.iter().map(|&(_, l)| l).sum();
    assert_eq!(total, 3000);
    assert_eq!(server_app.writes_seen[0], (0, 1024));
    assert_eq!(server_app.writes_seen[1], (1024, 1024));
    assert_eq!(server_app.writes_seen[2], (2048, 952));
}

#[test]
fn read_returns_remote_bytes() {
    struct ReadClient {
        inner: Client,
        read_back: Option<Vec<u8>>,
    }
    impl RdmaApp for ReadClient {
        fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
            self.inner.on_start(ops);
        }
        fn on_cm_event(&mut self, ev: CmEvent, ops: &mut HostOps<'_, '_>) {
            self.inner.on_cm_event(ev, ops);
        }
        fn on_completion(&mut self, c: Completion, ops: &mut HostOps<'_, '_>) {
            if c.wr_id == WrId(900) && c.status.is_success() {
                self.read_back = Some(
                    ops.read_local(self.inner.scratch.expect("scratch"), 0, 16)
                        .to_vec(),
                );
            }
            self.inner.on_completion(c, ops);
        }
    }
    let mut inner = Client::writes(SERVER_IP, vec![]);
    inner.read_len = Some(16);
    let server = Server::new(64, Permissions::READ);
    let mut sim = Simulation::new(17);
    let c = sim.add_node(Box::new(Host::new(
        HostConfig::new(CLIENT_IP),
        ReadClient {
            inner,
            read_back: None,
        },
    )));
    let s = sim.add_node(Box::new(Host::new(HostConfig::new(SERVER_IP), server)));
    sim.connect(c, s, LinkSpec::default());
    sim.run_until(SimTime::from_millis(1));
    let client_app = sim.node_ref::<Host<ReadClient>>(c).app();
    assert_eq!(client_app.inner.completions.len(), 1);
    assert!(client_app.inner.completions[0].status.is_success());
    let expected: Vec<u8> = (0..16u8).collect();
    assert_eq!(client_app.read_back.as_deref(), Some(&expected[..]));
}

#[test]
fn write_without_permission_naks_remote_access_error() {
    let server = Server::new(4096, Permissions::NONE); // no write permission
    let client = Client::writes(SERVER_IP, vec![Bytes::from(vec![1u8; 32])]);
    let (mut sim, c, s) = two_host_sim(server, client);
    sim.run_until(SimTime::from_millis(1));

    let client_app = sim.node_ref::<Host<Client>>(c).app();
    assert_eq!(client_app.completions.len(), 1);
    assert_eq!(
        client_app.completions[0].status,
        CompletionStatus::RemoteError(NakCode::RemoteAccessError)
    );
    let server_app = sim.node_ref::<Host<Server>>(s).app();
    assert!(server_app.writes_seen.is_empty(), "write must not land");
}

#[test]
fn wrong_rkey_naks() {
    let server = Server::new(4096, Permissions::WRITE);
    let mut client = Client::writes(SERVER_IP, vec![Bytes::from(vec![1u8; 32])]);
    client.bogus_rkey = true;
    let (mut sim, c, _s) = two_host_sim(server, client);
    sim.run_until(SimTime::from_millis(1));
    let client_app = sim.node_ref::<Host<Client>>(c).app();
    assert_eq!(
        client_app.completions[0].status,
        CompletionStatus::RemoteError(NakCode::RemoteAccessError)
    );
}

#[test]
fn rejection_reaches_the_initiator() {
    let mut server = Server::new(64, Permissions::NONE);
    server.reject_all = true;
    let client = Client::writes(SERVER_IP, vec![]);
    let (mut sim, c, _s) = two_host_sim(server, client);
    sim.run_until(SimTime::from_millis(1));
    let client_app = sim.node_ref::<Host<Client>>(c).app();
    assert!(client_app.rejected);
    assert!(client_app.connected_at.is_none());
}

/// Timeout test: the server dies mid-run *before* acknowledging.
#[test]
fn unacked_write_flushes_with_timeout_error() {
    struct SlowStart {
        inner: Client,
        armed: bool,
    }
    impl RdmaApp for SlowStart {
        fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
            self.inner.on_start(ops);
        }
        fn on_cm_event(&mut self, ev: CmEvent, ops: &mut HostOps<'_, '_>) {
            if let CmEvent::Connected {
                qpn, private_data, ..
            } = &ev
            {
                // Record but delay the write by 2 ms via an app timer.
                self.inner.qpn = Some(*qpn);
                self.inner.advert = Some(RegionAdvert::decode(private_data).expect("advert"));
                ops.set_app_timer(SimDuration::from_millis(2), 1);
                self.armed = true;
                return;
            }
            self.inner.on_cm_event(ev, ops);
        }
        fn on_timer(&mut self, _token: u64, ops: &mut HostOps<'_, '_>) {
            let adv = self.inner.advert.expect("connected");
            ops.post_write(
                self.inner.qpn.expect("connected"),
                WrId(0),
                adv.va,
                adv.rkey,
                Bytes::from(vec![3u8; 32]),
            );
        }
        fn on_completion(&mut self, c: Completion, ops: &mut HostOps<'_, '_>) {
            self.inner.on_completion(c, ops);
        }
    }

    let mut sim = Simulation::new(5);
    let client = SlowStart {
        inner: Client::writes(SERVER_IP, vec![]),
        armed: false,
    };
    let c = sim.add_node(Box::new(Host::new(HostConfig::new(CLIENT_IP), client)));
    let s = sim.add_node(Box::new(Host::new(
        HostConfig::new(SERVER_IP),
        Server::new(4096, Permissions::WRITE),
    )));
    sim.connect(c, s, LinkSpec::default());

    // Handshake completes quickly; kill the server at 1 ms, before the
    // delayed write at 2 ms.
    sim.run_until(SimTime::from_millis(1));
    sim.set_node_down(s, true);
    // Timeout 131 µs × (7 retries + 1) ≈ 1.05 ms after the write at 2 ms;
    // run long enough to hit the retry limit.
    sim.run_until(SimTime::from_millis(20));

    let app = sim.node_ref::<Host<SlowStart>>(c).app();
    assert!(app.armed);
    assert_eq!(app.inner.completions.len(), 1);
    assert_eq!(app.inner.completions[0].status, CompletionStatus::TimedOut);
}

/// The fence a replica applies to a deposed leader: the write is posted
/// under a valid grant, but the grant is revoked while the packet is on
/// the wire. The revoke must win — NAK, no bytes landed.
#[test]
fn revoke_during_in_flight_write_naks_and_leaves_memory_clean() {
    let server = Server::new(4096, Permissions::NONE);
    let client = Client::writes(SERVER_IP, vec![Bytes::from(vec![0xAB; 64])]);
    let (mut sim, c, s) = two_host_sim(server, client);

    // Let the server register its region, then grant the client an
    // explicit write permission (the leader-adoption grant).
    while sim.node_ref::<Host<Server>>(s).app().region.is_none() {
        assert!(sim.step(), "server never registered its region");
    }
    sim.with_node::<Host<Server>, _>(s, |host, ctx| {
        host.with_ops(ctx, |app, ops| {
            ops.grant(
                app.region.expect("registered"),
                CLIENT_IP,
                Permissions::WRITE,
            );
        })
    });

    // Step until the client has connected and posted its write — the
    // packet is now in flight towards the server...
    while sim.node_ref::<Host<Client>>(c).app().connected_at.is_none() {
        assert!(sim.step(), "handshake never completed");
    }
    // ...and revoke the grant before it can land.
    sim.with_node::<Host<Server>, _>(s, |host, ctx| {
        host.with_ops(ctx, |app, ops| {
            ops.revoke(app.region.expect("registered"), CLIENT_IP);
        })
    });
    sim.run_until(SimTime::from_millis(1));

    let client_app = sim.node_ref::<Host<Client>>(c).app();
    assert_eq!(client_app.completions.len(), 1);
    assert_eq!(
        client_app.completions[0].status,
        CompletionStatus::RemoteError(NakCode::RemoteAccessError)
    );
    let server_app = sim.node_ref::<Host<Server>>(s).app();
    assert!(server_app.writes_seen.is_empty(), "no bytes may land");
}

#[test]
fn pipelined_writes_complete_in_order() {
    let payloads: Vec<Bytes> = (0..32).map(|i| Bytes::from(vec![i as u8; 64])).collect();
    let server = Server::new(4096, Permissions::WRITE);
    let client = Client::writes(SERVER_IP, payloads);
    let (mut sim, c, _s) = two_host_sim(server, client);
    sim.run_until(SimTime::from_millis(2));
    let app = sim.node_ref::<Host<Client>>(c).app();
    assert_eq!(app.completions.len(), 32);
    for (i, comp) in app.completions.iter().enumerate() {
        assert_eq!(comp.wr_id, WrId(i as u64), "in-order completion");
        assert!(comp.status.is_success());
    }
}

#[test]
fn credits_are_advertised_on_acks() {
    let server = Server::new(4096, Permissions::WRITE);
    let client = Client::writes(SERVER_IP, vec![Bytes::from(vec![0u8; 8])]);
    let (mut sim, c, _s) = two_host_sim(server, client);
    sim.run_until(SimTime::from_millis(1));
    let app = sim.node_ref::<Host<Client>>(c).app();
    // An idle responder advertises (nearly) full capacity.
    assert!(
        app.completions[0].credits >= 14,
        "got {}",
        app.completions[0].credits
    );
}
