//! Cluster tests for the Mu baseline: election, replication, fail-over.

use mu::{MemberEvent, MuMember, MuMemberConfig};
use netsim::{LinkSpec, NodeId, SimTime, Simulation};
use rdma::{Host, HostConfig};
use replication::{ClusterConfig, MemberId, WorkloadSpec};
use std::net::Ipv4Addr;
use tofino::{L3Forwarder, Switch, SwitchConfig};

const SW_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 100);

fn member_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 1 + i as u8)
}

struct TestCluster {
    sim: Simulation,
    members: Vec<NodeId>,
}

impl TestCluster {
    fn new(n: usize, workload: WorkloadSpec) -> Self {
        let ips: Vec<Ipv4Addr> = (0..n).map(member_ip).collect();
        let cluster = ClusterConfig::new(&ips);
        let mut sim = Simulation::new(99);
        let mut members = Vec::new();
        for i in 0..n {
            let mut cfg = MuMemberConfig::new(cluster.clone(), MemberId(i as u8));
            // Every member carries the workload: whoever leads drives it.
            cfg.workload = Some(workload);
            members.push(sim.add_node(Box::new(Host::new(
                HostConfig::new(member_ip(i)),
                MuMember::new(cfg),
            ))));
        }
        let sw = sim.add_node(Box::new(Switch::new(
            SwitchConfig::tofino1(SW_IP),
            n,
            L3Forwarder,
        )));
        for (i, &m) in members.iter().enumerate() {
            let (_, swp) = sim.connect(m, sw, LinkSpec::default());
            sim.node_mut::<Switch<L3Forwarder>>(sw)
                .add_route(member_ip(i), swp);
        }
        TestCluster { sim, members }
    }

    fn member(&self, i: usize) -> &MuMember {
        self.sim.node_ref::<Host<MuMember>>(self.members[i]).app()
    }
}

#[test]
fn lowest_id_becomes_operational_leader_and_decides() {
    let mut tc = TestCluster::new(3, WorkloadSpec::closed(4, 64, 1000));
    tc.sim.run_until(SimTime::from_millis(50));

    let leader = tc.member(0);
    assert!(leader.is_operational_leader(), "member 0 must lead");
    assert_eq!(leader.believed_leader(), Some(MemberId(0)));
    assert_eq!(leader.stats.decided, 1000, "workload ran to completion");
    assert!(!leader.stats.latency.is_empty());

    // Replicas follow and applied the decided entries.
    for i in 1..3 {
        let r = tc.member(i);
        assert!(!r.is_operational_leader());
        assert_eq!(r.believed_leader(), Some(MemberId(0)));
        assert_eq!(r.stats.applied, 1000, "replica {i} applied the log");
    }
}

#[test]
fn leader_crash_elects_next_lowest() {
    let mut tc = TestCluster::new(3, WorkloadSpec::closed(2, 64, 0));
    tc.sim.run_until(SimTime::from_millis(20));
    assert!(tc.member(0).is_operational_leader());
    let decided_before = tc.member(0).stats.decided;
    assert!(decided_before > 0);

    // Kill the leader.
    let kill_at = tc.sim.now();
    let m0 = tc.members[0];
    tc.sim.set_node_down(m0, true);
    tc.sim
        .run_until(kill_at + netsim::SimDuration::from_millis(30));

    let new_leader = tc.member(1);
    assert!(
        new_leader.is_operational_leader(),
        "member 1 must take over"
    );
    assert!(new_leader.stats.decided > 0, "new view decides values");
    assert_eq!(tc.member(2).believed_leader(), Some(MemberId(1)));

    // Fail-over timeline: detection, takeover, first decision.
    let became = new_leader
        .stats
        .event_time(|e| matches!(e, MemberEvent::BecameLeader { .. }))
        .expect("became leader");
    let first = new_leader
        .stats
        .event_time(|e| matches!(e, MemberEvent::FirstDecision { view, .. } if *view >= 2))
        .expect("decided in new view");
    let takeover = first.duration_since(became);
    // Paper (Table IV): Mu leader fail-over ≈ 0.9 ms, dominated by the
    // permission change. Allow the CM round-trips on top.
    assert!(
        takeover >= netsim::SimDuration::from_micros(900),
        "takeover {takeover} must include the permission change"
    );
    assert!(
        takeover <= netsim::SimDuration::from_micros(1500),
        "takeover {takeover} should be dominated by the 0.9 ms permission change"
    );
}

#[test]
fn replica_crash_does_not_stop_consensus() {
    let mut tc = TestCluster::new(3, WorkloadSpec::closed(2, 64, 0));
    tc.sim.run_until(SimTime::from_millis(20));
    let before = tc.member(0).stats.decided;
    assert!(before > 0);

    // Kill one replica; with f = 1 the other replica's ACKs suffice.
    let m2 = tc.members[2];
    tc.sim.set_node_down(m2, true);
    tc.sim.run_until(SimTime::from_millis(60));

    let leader = tc.member(0);
    assert!(leader.is_operational_leader(), "leader keeps the quorum");
    assert!(
        leader.stats.decided > before + 100,
        "consensus kept flowing: {} -> {}",
        before,
        leader.stats.decided
    );
    // The dead replica was excluded.
    assert!(leader
        .stats
        .event_time(|e| matches!(e, MemberEvent::ReplicaExcluded { id } if *id == MemberId(2)))
        .is_some());
    // No view change: the leader did not move.
    assert_eq!(leader.believed_leader(), Some(MemberId(0)));
}

#[test]
fn five_member_cluster_waits_for_quorum_of_two() {
    let mut tc = TestCluster::new(5, WorkloadSpec::closed(4, 64, 500));
    tc.sim.run_until(SimTime::from_millis(50));
    let leader = tc.member(0);
    assert!(leader.is_operational_leader());
    assert_eq!(leader.stats.decided, 500);
    // All four replicas eventually apply everything (they all receive the
    // writes even though only f=2 ACKs gate each decision).
    for i in 1..5 {
        assert_eq!(tc.member(i).stats.applied, 500, "replica {i}");
    }
}

#[test]
fn open_loop_workload_reaches_target_rate() {
    // 100 k ops/s for 2000 requests = 20 ms of traffic.
    let mut tc = TestCluster::new(3, WorkloadSpec::open_loop(100_000.0, 64, 2000));
    tc.sim.run_until(SimTime::from_millis(60));
    let leader = tc.member(0);
    assert_eq!(leader.stats.decided, 2000);
    // At this modest rate latency must be flat (no queueing): a few µs.
    let mean = leader.stats.mean_latency();
    assert!(
        mean <= netsim::SimDuration::from_micros(10),
        "uncontended Mu latency should be microseconds, got {mean}"
    );
}
