//! One-call construction of a Mu deployment: members behind a plain L3
//! switch fabric, with an optional backup fabric.

use netsim::{LinkSpec, NodeId, SimDuration, Simulation, Tracer};
use rdma::{Host, HostConfig};
use replication::{ClusterConfig, MemberId, ProtocolTiming, WorkloadSpec};
use std::net::Ipv4Addr;
use tofino::{L3Forwarder, Switch, SwitchConfig};

use crate::member::{MuMember, MuMemberConfig};

/// Builds a ready-to-run Mu cluster inside a [`Simulation`].
///
/// ```
/// use mu::ClusterBuilder;
/// use replication::WorkloadSpec;
/// use netsim::SimTime;
///
/// let mut deployment = ClusterBuilder::new(3)
///     .workload(WorkloadSpec::closed(4, 64, 100))
///     .build();
/// deployment.sim.run_until(SimTime::from_millis(50));
/// assert_eq!(deployment.leader().stats.decided, 100);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    n_members: usize,
    workload: Option<WorkloadSpec>,
    link: LinkSpec,
    backup_fabric: bool,
    seed: u64,
    verb_cost: Option<SimDuration>,
    tweak_rx_capacity: Vec<(usize, usize)>,
    timing: Option<ProtocolTiming>,
    log_size: Option<usize>,
    tracer: Tracer,
}

impl ClusterBuilder {
    /// A cluster of `n_members` (1 leader + n-1 replicas at steady state).
    ///
    /// # Panics
    ///
    /// Panics if `n_members < 2`.
    pub fn new(n_members: usize) -> Self {
        assert!(n_members >= 2, "a cluster needs at least two members");
        ClusterBuilder {
            n_members,
            workload: None,
            link: LinkSpec::default(),
            backup_fabric: false,
            seed: 42,
            verb_cost: None,
            tweak_rx_capacity: Vec::new(),
            timing: None,
            log_size: None,
            tracer: Tracer::disabled(),
        }
    }

    /// Sets the leader-driven workload.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = Some(spec);
        self
    }

    /// Overrides the link characteristics.
    pub fn link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }

    /// Adds a second, plain-L3 fabric (switch-crash fail-over).
    pub fn backup_fabric(mut self, enable: bool) -> Self {
        self.backup_fabric = enable;
        self
    }

    /// Sets the deterministic simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the link-management and failure-detection timing (chaos
    /// tests tighten these to provoke reconnects quickly).
    pub fn timing(mut self, timing: ProtocolTiming) -> Self {
        self.timing = Some(timing);
        self
    }

    /// Overrides each member's replicated-log size (default 16 MiB).
    /// Model-checking runs shrink it so thousands of re-executions stay
    /// cheap.
    pub fn log_size(mut self, bytes: usize) -> Self {
        self.log_size = Some(bytes);
        self
    }

    /// Attaches a trace sink. Each member's host (and application) emits
    /// records labelled `m0`, `m1`, … Disabled by default — the hot paths
    /// then pay a single branch per potential event.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Shrinks member `i`'s NIC receive capacity.
    pub fn member_rx_capacity(mut self, member: usize, capacity: usize) -> Self {
        self.tweak_rx_capacity.push((member, capacity));
        self
    }

    /// Overrides every host's CPU cost per verb interaction (post/reap).
    pub fn verb_cost(mut self, cost: SimDuration) -> Self {
        self.verb_cost = Some(cost);
        self
    }

    /// Assembles the simulation.
    pub fn build(self) -> Deployment {
        let member_ip = |i: usize| Ipv4Addr::new(10, 0, 0, 1 + i as u8);
        let switch_ip = Ipv4Addr::new(10, 0, 0, 100);
        let ips: Vec<Ipv4Addr> = (0..self.n_members).map(member_ip).collect();
        let mut cluster = ClusterConfig::new(&ips);
        if let Some(timing) = self.timing {
            cluster.timing = timing;
        }
        if let Some(bytes) = self.log_size {
            cluster.log_size = bytes;
        }
        let mut sim = Simulation::new(self.seed);

        let mut members = Vec::new();
        for i in 0..self.n_members {
            let mut mcfg = MuMemberConfig::new(cluster.clone(), MemberId(i as u8));
            mcfg.workload = self.workload;
            if self.backup_fabric {
                mcfg.backup_port = Some(netsim::PortId::from_index(1));
                mcfg.path_failover_delay = SimDuration::from_millis(55);
            }
            let mut hcfg = HostConfig::new(member_ip(i));
            hcfg.tracer = self.tracer.labeled(&format!("m{i}"));
            if let Some(cost) = self.verb_cost {
                hcfg.post_cost = cost;
                hcfg.reap_cost = cost;
            }
            if let Some(&(_, cap)) = self.tweak_rx_capacity.iter().find(|&&(m, _)| m == i) {
                hcfg.rx_capacity = cap;
            }
            members.push(sim.add_node(Box::new(Host::new(hcfg, MuMember::new(mcfg)))));
        }

        let switch = sim.add_node(Box::new(Switch::new(
            SwitchConfig::tofino1(switch_ip),
            self.n_members,
            L3Forwarder,
        )));
        for (i, &m) in members.iter().enumerate() {
            let (_, swp) = sim.connect(m, switch, self.link);
            sim.node_mut::<Switch<L3Forwarder>>(switch)
                .add_route(member_ip(i), swp);
        }

        let backup = if self.backup_fabric {
            let backup_ip = Ipv4Addr::new(10, 0, 0, 101);
            let b = sim.add_node(Box::new(Switch::new(
                SwitchConfig::tofino1(backup_ip),
                self.n_members,
                L3Forwarder,
            )));
            for (i, &m) in members.iter().enumerate() {
                let (_, swp) = sim.connect(m, b, self.link);
                sim.node_mut::<Switch<L3Forwarder>>(b)
                    .add_route(member_ip(i), swp);
            }
            Some(b)
        } else {
            None
        };

        Deployment {
            sim,
            cluster,
            members,
            switch,
            backup,
        }
    }
}

/// A built Mu deployment.
pub struct Deployment {
    /// The simulation to drive.
    pub sim: Simulation,
    /// The cluster description.
    pub cluster: ClusterConfig,
    /// Member node ids, in member-id order.
    pub members: Vec<NodeId>,
    /// The fabric switch node id.
    pub switch: NodeId,
    /// The backup fabric node id, if built.
    pub backup: Option<NodeId>,
}

impl Deployment {
    /// The member application of member `i`.
    pub fn member(&self, i: usize) -> &MuMember {
        self.sim.node_ref::<Host<MuMember>>(self.members[i]).app()
    }

    /// Mutable access to member `i` (e.g. to reset measurement windows).
    pub fn member_mut(&mut self, i: usize) -> &mut MuMember {
        self.sim
            .node_mut::<Host<MuMember>>(self.members[i])
            .app_mut()
    }

    /// Runs a closure against member `i` with live host operations.
    pub fn with_member<R>(
        &mut self,
        i: usize,
        f: impl FnOnce(&mut MuMember, &mut rdma::HostOps<'_, '_>) -> R,
    ) -> R {
        let node = self.members[i];
        self.sim
            .with_node::<Host<MuMember>, _>(node, |host, ctx| host.with_ops(ctx, f))
    }

    /// The steady-state leader (member 0).
    pub fn leader(&self) -> &MuMember {
        self.member(0)
    }

    /// Crashes member `i`.
    pub fn kill_member(&mut self, i: usize) {
        let node = self.members[i];
        self.sim.set_node_down(node, true);
    }

    /// Powers the fabric switch off.
    pub fn kill_switch(&mut self) {
        let node = self.switch;
        self.sim.set_node_down(node, true);
    }
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("mu::Deployment")
            .field("members", &self.members.len())
            .field("backup", &self.backup.is_some())
            .finish()
    }
}
