//! The Mu member: a complete replica/leader node application.
//!
//! Every member runs this same state machine (§III):
//!
//! * it exposes a **heartbeat counter** (RDMA-readable by everyone) and a
//!   **log region** (writable only by the current leader, enforced with
//!   RDMA permissions);
//! * it reads every peer's heartbeat each period and feeds a failure
//!   detector; the live member with the lowest id is the leader;
//! * the leader opens one queue pair *per replica* and replicates each
//!   value with one RDMA write per replica, counting acknowledgements on
//!   its own CPU — the communication pattern P4CE moves into the switch;
//! * a value is decided once `f` replica NICs acknowledged it.
//!
//! View changes re-fence the log: the replica revokes the old leader and
//! grants the new one after the permission-change delay the paper
//! measures at 0.9 ms (§V-E).

use bytes::Bytes;
use netsim::{PortId, SimDuration, SimTime, TraceEvent};
use rdma::{
    CmEvent, Completion, CompletionStatus, HostOps, Permissions, Psn, Qpn, RdmaApp, RegionAdvert,
    RegionHandle, RejectReason, WrId,
};
use replication::{
    ArrivalClock, ClusterConfig, FailureDetector, HeartbeatCounter, LogReader, LogWriter, MemberId,
    ViewTracker, WorkloadMode, WorkloadSpec,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

use crate::stats::{MemberEvent, MemberStats};

// Connection kinds, carried as the first private-data byte.
const KIND_HEARTBEAT: u8 = 1;
const KIND_REPLICATION: u8 = 2;

// Application timer classes (within the 56-bit app token space).
const T_HEARTBEAT: u64 = 1 << 48;
const T_ARRIVAL: u64 = 2 << 48;
const T_DEFER_ACCEPT: u64 = 3 << 48;
const T_RECONNECT: u64 = 4 << 48;
const T_PATH_RECOVER: u64 = 5 << 48;
const T_CLASS_MASK: u64 = 0xff << 48;
const T_DATA_MASK: u64 = !T_CLASS_MASK & ((1 << 56) - 1);

// Work-request id classes.
const WR_HB: u64 = 1 << 56;
const WR_REPL: u64 = 2 << 56;
const WR_CATCHUP: u64 = 3 << 56;
const WR_CLASS_MASK: u64 = 0xff << 56;

/// Configuration of one Mu member.
#[derive(Debug, Clone)]
pub struct MuMemberConfig {
    /// The cluster this member belongs to.
    pub cluster: ClusterConfig,
    /// This member's identity.
    pub id: MemberId,
    /// The client workload this member drives *when it is the leader*.
    pub workload: Option<WorkloadSpec>,
    /// A backup fabric port, if the host is multi-homed (switch-crash
    /// fail-over, §V-E).
    pub backup_port: Option<PortId>,
    /// Route-update plus reconnection penalty after a path fail-over
    /// (the bulk of the paper's 60 ms switch-crash recovery).
    pub path_failover_delay: SimDuration,
}

impl MuMemberConfig {
    /// A member of `cluster` with id `id` and no workload.
    pub fn new(cluster: ClusterConfig, id: MemberId) -> Self {
        MuMemberConfig {
            cluster,
            id,
            workload: None,
            backup_port: None,
            path_failover_delay: SimDuration::from_millis(55),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    Idle,
    Connecting,
    Ready,
    Dead,
}

#[derive(Debug)]
struct HbLink {
    state: LinkState,
    qpn: Option<Qpn>,
    advert: Option<RegionAdvert>,
    last_seen: u64,
    reconnect_backoff: u32,
}

impl HbLink {
    fn new() -> Self {
        HbLink {
            state: LinkState::Idle,
            qpn: None,
            advert: None,
            last_seen: 0,
            reconnect_backoff: 0,
        }
    }
}

#[derive(Debug)]
struct ReplLink {
    state: LinkState,
    qpn: Option<Qpn>,
    advert: Option<RegionAdvert>,
    retry_backoff: u32,
}

#[derive(Debug)]
struct PendingDecision {
    acks: u32,
    posted: u32,
    decided: bool,
    arrived: SimTime,
    size: usize,
    /// Where the entry sits in the log (for re-replication after link
    /// recovery).
    at: usize,
    len: usize,
}

#[derive(Debug, Clone)]
struct DeferredAccept {
    handshake_id: u64,
    from_ip: Ipv4Addr,
    from_qpn: Qpn,
    start_psn: Psn,
}

/// The Mu member application. Plug into an [`rdma::Host`].
pub struct MuMember {
    cfg: MuMemberConfig,
    // Regions.
    log_region: Option<RegionHandle>,
    hb_region: Option<RegionHandle>,
    hb_scratch: Option<RegionHandle>,
    // Decision-protocol state.
    counter: HeartbeatCounter,
    detector: FailureDetector,
    views: ViewTracker,
    writer: LogWriter,
    reader: LogReader,
    /// Seq the next state-machine application must carry: an epoch
    /// rebuild replays the log from the head, and entries below this
    /// mark were already applied (exactly-once application).
    next_apply_seq: u64,
    // Links.
    hb_links: BTreeMap<MemberId, HbLink>,
    repl_links: BTreeMap<MemberId, ReplLink>,
    handshake_peer: HashMap<u64, (u8, MemberId)>,
    deferred: HashMap<u64, DeferredAccept>,
    next_defer: u64,
    // Leadership.
    i_am_leader: bool,
    operational: bool,
    first_decision_pending: bool,
    granted_leader: Option<Ipv4Addr>,
    view_writer_qpns: BTreeSet<u32>,
    // Replication.
    pending: BTreeMap<u64, PendingDecision>,
    // Workload.
    arrivals: Option<ArrivalClock>,
    workload_started: bool,
    payload_proto: Bytes,
    // Path fail-over.
    failed_over: bool,
    /// Heartbeat ticks to wait before feeding the failure detector —
    /// covers link establishment at start-up and after a path fail-over
    /// (no information is not a stall).
    detector_grace: u32,
    state_machine: Option<Box<dyn replication::StateMachine>>,
    /// Measurements.
    pub stats: MemberStats,
}

impl MuMember {
    /// Builds the member application.
    pub fn new(cfg: MuMemberConfig) -> Self {
        let peers: Vec<MemberId> = cfg
            .cluster
            .peers_of(cfg.id)
            .iter()
            .map(|&(id, _)| id)
            .collect();
        let detector = FailureDetector::new(cfg.cluster.failure_threshold, peers.iter().copied());
        let hb_links = peers.iter().map(|&id| (id, HbLink::new())).collect();
        let log_size = cfg.cluster.log_size;
        let detector_grace = cfg.cluster.timing.detector_grace_ticks;
        MuMember {
            cfg,
            log_region: None,
            hb_region: None,
            hb_scratch: None,
            counter: HeartbeatCounter::new(),
            detector,
            views: ViewTracker::new(),
            writer: LogWriter::new(log_size),
            reader: LogReader::new(),
            next_apply_seq: 0,
            hb_links,
            repl_links: BTreeMap::new(),
            handshake_peer: HashMap::new(),
            deferred: HashMap::new(),
            next_defer: 0,
            i_am_leader: false,
            operational: false,
            first_decision_pending: false,
            granted_leader: None,
            view_writer_qpns: BTreeSet::new(),
            pending: BTreeMap::new(),
            arrivals: None,
            workload_started: false,
            payload_proto: Bytes::new(),
            failed_over: false,
            detector_grace,
            state_machine: None,
            stats: MemberStats::default(),
        }
    }

    /// Installs the replicated state machine: every decided entry that
    /// becomes visible in this member's log is applied to it, in order.
    pub fn set_state_machine(&mut self, sm: Box<dyn replication::StateMachine>) {
        self.state_machine = Some(sm);
    }

    /// The installed state machine, for post-run inspection.
    pub fn state_machine(&self) -> Option<&dyn replication::StateMachine> {
        self.state_machine.as_deref()
    }

    /// Proposes a client-supplied value for consensus. Returns `false`
    /// when this member is not currently an operational leader.
    pub fn propose_value(&mut self, payload: Bytes, ops: &mut HostOps<'_, '_>) -> bool {
        if !self.is_operational_leader() {
            return false;
        }
        let now = ops.now();
        self.propose_payload(payload, now, ops);
        true
    }

    /// This member's id.
    pub fn id(&self) -> MemberId {
        self.cfg.id
    }

    /// `true` while this member believes it leads and has a quorum.
    pub fn is_operational_leader(&self) -> bool {
        self.i_am_leader && self.operational
    }

    /// The current view number.
    pub fn view(&self) -> u64 {
        self.views.view()
    }

    /// The leader this member currently believes in.
    pub fn believed_leader(&self) -> Option<MemberId> {
        self.views.leader()
    }

    /// Handle of this member's replicated-log region, once registered.
    /// Invariant oracles pair it with [`rdma::Host::memory`] to audit who
    /// holds write permission on the log.
    pub fn log_region(&self) -> Option<RegionHandle> {
        self.log_region
    }

    /// The leader currently holding this member's log-write grant
    /// (`None` before the first grant).
    pub fn epoch_leader(&self) -> Option<Ipv4Addr> {
        self.granted_leader
    }

    /// Sequence number the next applied entry must carry — applied
    /// entries are exactly `0..next_apply_seq`, in order.
    pub fn next_apply_seq(&self) -> u64 {
        self.next_apply_seq
    }

    /// Clears the measurement window (latency samples and throughput),
    /// restarting it at `now`. Experiment harnesses call this after
    /// warm-up.
    pub fn reset_measurements(&mut self, now: SimTime) {
        self.stats.latency.clear();
        self.stats.throughput.reset(now);
    }

    fn my_index(&self) -> usize {
        self.cfg
            .cluster
            .members
            .iter()
            .position(|&(id, _)| id == self.cfg.id)
            .expect("member is part of its cluster")
    }

    fn peer_index(&self, peer: MemberId) -> usize {
        self.cfg
            .cluster
            .members
            .iter()
            .position(|&(id, _)| id == peer)
            .expect("peer is part of the cluster")
    }

    // ------------------------------------------------------------------
    // Heartbeats & views
    // ------------------------------------------------------------------

    fn heartbeat_tick(&mut self, ops: &mut HostOps<'_, '_>) {
        // Publish our own liveness.
        let value = self.counter.tick();
        if let Some(region) = self.hb_region {
            ops.write_local(region, 0, &value.to_be_bytes());
        }
        // Feed the detector with the freshest knowledge of every peer —
        // once the grace window for link establishment has passed.
        let peers: Vec<MemberId> = self.hb_links.keys().copied().collect();
        if self.detector_grace > 0 {
            self.detector_grace -= 1;
        } else {
            for peer in &peers {
                let last = self.hb_links[peer].last_seen;
                self.detector.observe(*peer, last);
            }
        }
        // Issue this round's reads and drive reconnects.
        let timing = self.cfg.cluster.timing;
        for peer in peers {
            let link = self.hb_links.get_mut(&peer).expect("known peer");
            match link.state {
                LinkState::Ready => {
                    let (qpn, advert) = (
                        link.qpn.expect("ready link has a QP"),
                        link.advert.expect("ready link has an advert"),
                    );
                    let slot = self.peer_index(peer) * 8;
                    ops.post_read(
                        qpn,
                        WrId(WR_HB | u64::from(peer.0)),
                        advert.va,
                        advert.rkey,
                        8,
                        self.hb_scratch.expect("registered"),
                        slot,
                    );
                }
                LinkState::Idle => self.connect_hb(peer, ops),
                LinkState::Dead => {
                    link.reconnect_backoff += 1;
                    if link.reconnect_backoff >= timing.link_redial_ticks {
                        link.reconnect_backoff = 0;
                        self.connect_hb(peer, ops);
                    }
                }
                LinkState::Connecting => {
                    // A handshake that never completes (its packets died
                    // with the fabric) must be abandoned and retried.
                    link.reconnect_backoff += 1;
                    if link.reconnect_backoff >= timing.link_abandon_ticks {
                        link.reconnect_backoff = timing.link_retry_soon_ticks;
                        link.state = LinkState::Dead;
                    }
                }
            }
        }
        self.update_view(ops);
        // A dead fabric looks like every peer dying at once: fail over to
        // the backup path if we have one.
        if !self.failed_over
            && self.cfg.backup_port.is_some()
            && self.detector.alive_peers().is_empty()
            && self.views.view() > 0
        {
            self.path_failover(ops);
            return;
        }
        let period = self.cfg.cluster.heartbeat_period;
        ops.set_app_timer(period, T_HEARTBEAT);
    }

    fn connect_hb(&mut self, peer: MemberId, ops: &mut HostOps<'_, '_>) {
        let ip = self.cfg.cluster.addr_of(peer);
        let hs = ops.connect(ip, Bytes::from_static(&[KIND_HEARTBEAT]));
        self.handshake_peer.insert(hs, (KIND_HEARTBEAT, peer));
        self.hb_links.get_mut(&peer).expect("known peer").state = LinkState::Connecting;
    }

    fn update_view(&mut self, ops: &mut HostOps<'_, '_>) {
        let mut alive: BTreeSet<MemberId> = self.detector.alive_peers();
        alive.insert(self.cfg.id);
        let Some(change) = self.views.update(&alive) else {
            // Even without a leadership change, a leader may need to
            // exclude replicas that died.
            if self.i_am_leader {
                self.exclude_dead_replicas(ops);
            }
            return;
        };
        self.stats.event(
            ops.now(),
            MemberEvent::ViewChange {
                view: change.view,
                leader: change.new,
            },
        );
        ops.tracer().emit(ops.now(), || TraceEvent::ViewChange {
            view: change.view,
            leader: change.new.map_or(u64::MAX, |m| u64::from(m.0)),
        });
        let i_lead = change.new == Some(self.cfg.id);
        if i_lead && !self.i_am_leader {
            self.become_leader(change.view, ops);
        } else if !i_lead {
            self.i_am_leader = false;
            self.operational = false;
            // Re-fence the log for the new leader: the old grant dies
            // now; the new one is installed when the leader connects
            // (after the permission-change delay).
            if let (Some(region), Some(old)) = (self.log_region, self.granted_leader.take()) {
                ops.revoke(region, old);
            }
        }
    }

    fn exclude_dead_replicas(&mut self, ops: &mut HostOps<'_, '_>) {
        let dead: Vec<MemberId> = self
            .repl_links
            .iter()
            .filter(|&(id, link)| link.state == LinkState::Ready && !self.detector.is_alive(*id))
            .map(|(&id, _)| id)
            .collect();
        for id in dead {
            if let Some(link) = self.repl_links.get_mut(&id) {
                link.state = LinkState::Dead;
                if let Some(qpn) = link.qpn.take() {
                    ops.destroy_qp(qpn);
                }
            }
            self.stats
                .event(ops.now(), MemberEvent::ReplicaExcluded { id });
        }
        // Self-healing: replicas that are alive again (e.g. after a path
        // fail-over) get their replication link re-established.
        let peers: Vec<MemberId> = self
            .cfg
            .cluster
            .peers_of(self.cfg.id)
            .iter()
            .map(|&(id, _)| id)
            .collect();
        let timing = self.cfg.cluster.timing;
        for peer in peers {
            if !self.detector.is_alive(peer) {
                continue;
            }
            let needs_connect = match self.repl_links.get_mut(&peer) {
                None => true,
                Some(link) if link.state == LinkState::Dead => {
                    link.retry_backoff += 1;
                    link.retry_backoff >= timing.link_redial_ticks
                }
                Some(link) if link.state == LinkState::Connecting => {
                    // Abandon handshakes that died with the fabric.
                    link.retry_backoff += 1;
                    if link.retry_backoff >= timing.link_abandon_ticks {
                        link.state = LinkState::Dead;
                        link.retry_backoff = timing.link_retry_soon_ticks;
                    }
                    false
                }
                Some(_) => false,
            };
            if needs_connect {
                self.retry_repl_connect(peer, ops);
            }
        }
    }

    /// Tears down and re-establishes the replication connections (the
    /// "configure a new communication group" scenario of Table IV). Only
    /// meaningful on the current leader.
    pub fn force_rebuild_comm(&mut self, ops: &mut HostOps<'_, '_>) {
        if !self.i_am_leader {
            return;
        }
        self.operational = false;
        self.stats.event(ops.now(), MemberEvent::CommRebuildStarted);
        for link in self.repl_links.values_mut() {
            if let Some(qpn) = link.qpn.take() {
                ops.destroy_qp(qpn);
            }
        }
        self.repl_links.clear();
        let peers: Vec<(MemberId, Ipv4Addr)> = self.cfg.cluster.peers_of(self.cfg.id);
        for (peer, ip) in peers {
            if !self.detector.is_alive(peer) {
                continue;
            }
            let hs = ops.connect(ip, Bytes::from_static(&[KIND_REPLICATION]));
            self.handshake_peer.insert(hs, (KIND_REPLICATION, peer));
            self.repl_links.insert(
                peer,
                ReplLink {
                    state: LinkState::Connecting,
                    qpn: None,
                    advert: None,
                    retry_backoff: 0,
                },
            );
        }
    }

    fn become_leader(&mut self, view: u64, ops: &mut HostOps<'_, '_>) {
        self.i_am_leader = true;
        self.operational = false;
        self.workload_started = false;
        self.first_decision_pending = true;
        self.stats
            .event(ops.now(), MemberEvent::BecameLeader { view });
        // Continue the log from what we consumed as a replica.
        self.writer
            .resume(self.reader.offset(), self.reader.consumed());
        // Open replication connections to every live replica.
        self.repl_links.clear();
        let peers: Vec<(MemberId, Ipv4Addr)> = self.cfg.cluster.peers_of(self.cfg.id);
        for (peer, ip) in peers {
            if !self.detector.is_alive(peer) {
                continue;
            }
            let hs = ops.connect(ip, Bytes::from_static(&[KIND_REPLICATION]));
            self.handshake_peer.insert(hs, (KIND_REPLICATION, peer));
            self.repl_links.insert(
                peer,
                ReplLink {
                    state: LinkState::Connecting,
                    qpn: None,
                    advert: None,
                    retry_backoff: 0,
                },
            );
        }
    }

    fn ready_links(&self) -> usize {
        self.repl_links
            .values()
            .filter(|l| l.state == LinkState::Ready)
            .count()
    }

    fn maybe_operational(&mut self, ops: &mut HostOps<'_, '_>) {
        if self.i_am_leader && !self.operational && self.ready_links() >= self.cfg.cluster.f() {
            self.operational = true;
            self.stats.event(
                ops.now(),
                MemberEvent::LeaderOperational {
                    view: self.views.view(),
                },
            );
        }
        // Benchmark hygiene: the workload starts once every *live*
        // replica is wired up, so early entries reach everyone.
        if self.i_am_leader
            && self.operational
            && !self.workload_started
            && self.ready_links() >= self.detector.alive_peers().len()
        {
            self.workload_started = true;
            self.start_workload(ops);
        }
    }

    fn path_failover(&mut self, ops: &mut HostOps<'_, '_>) {
        self.failed_over = true;
        self.first_decision_pending = true;
        self.stats.event(ops.now(), MemberEvent::PathFailover);
        let backup = self.cfg.backup_port.expect("checked by caller");
        ops.set_active_port(backup);
        // Tear down everything bound to the dead path.
        for link in self.hb_links.values_mut() {
            if let Some(qpn) = link.qpn.take() {
                ops.destroy_qp(qpn);
            }
            link.state = LinkState::Dead;
            link.reconnect_backoff = 0;
        }
        for link in self.repl_links.values_mut() {
            if let Some(qpn) = link.qpn.take() {
                ops.destroy_qp(qpn);
            }
            link.state = LinkState::Dead;
        }
        self.operational = false;
        // Routes re-converge and connections re-establish after the
        // fail-over penalty; heartbeats resume then.
        ops.set_app_timer(self.cfg.path_failover_delay, T_PATH_RECOVER);
    }

    // ------------------------------------------------------------------
    // Workload
    // ------------------------------------------------------------------

    fn start_workload(&mut self, ops: &mut HostOps<'_, '_>) {
        let Some(spec) = self.cfg.workload else {
            return;
        };
        if self.payload_proto.len() != spec.value_size {
            self.payload_proto = Bytes::from(vec![0xCD; spec.value_size]);
        }
        match spec.mode {
            WorkloadMode::OpenLoop { rate_per_sec } => {
                let clock = ArrivalClock::new(ops.now(), rate_per_sec);
                let first = clock.next_arrival();
                self.arrivals = Some(clock);
                ops.set_app_timer(first.saturating_duration_since(ops.now()), T_ARRIVAL);
            }
            WorkloadMode::Closed { inflight } => {
                for _ in 0..inflight {
                    if self.workload_done(&spec) {
                        break;
                    }
                    let now = ops.now();
                    self.propose(now, ops);
                }
            }
        }
    }

    fn workload_done(&self, spec: &WorkloadSpec) -> bool {
        spec.total_requests != 0 && self.stats.issued >= spec.total_requests
    }

    fn arrival_tick(&mut self, ops: &mut HostOps<'_, '_>) {
        let Some(spec) = self.cfg.workload else {
            return;
        };
        if !self.operational || self.workload_done(&spec) {
            return;
        }
        let now = ops.now();
        self.propose(now, ops);
        if let Some(clock) = &mut self.arrivals {
            let next = clock.advance();
            if !self.workload_done(&spec) {
                ops.set_app_timer(next.saturating_duration_since(ops.now()), T_ARRIVAL);
            }
        }
    }

    /// Starts one consensus: append locally, replicate to every ready
    /// replica, and wait for `f` acknowledgements.
    fn propose(&mut self, arrived: SimTime, ops: &mut HostOps<'_, '_>) {
        let payload = self.payload_proto.clone();
        self.propose_payload(payload, arrived, ops);
    }

    fn propose_payload(&mut self, payload: Bytes, arrived: SimTime, ops: &mut HostOps<'_, '_>) {
        debug_assert!(self.i_am_leader && self.operational);
        let size = payload.len();
        let Ok((entry, bytes, at)) = self.writer.append(payload) else {
            return; // log full: experiments size logs to avoid this
        };
        let region = self.log_region.expect("registered at start");
        ops.write_local(region, at, &bytes);
        self.stats.issued += 1;
        let (view, seq) = (self.views.view(), entry.seq);
        ops.tracer()
            .emit(ops.now(), || TraceEvent::Propose { view, seq });
        let mut posted = 0u32;
        let links: Vec<(MemberId, Qpn, RegionAdvert)> = self
            .repl_links
            .iter()
            .filter(|(_, l)| l.state == LinkState::Ready)
            .map(|(&id, l)| (id, l.qpn.expect("ready"), l.advert.expect("ready")))
            .collect();
        for (peer, qpn, advert) in links {
            let wr_id = WrId(WR_REPL | (u64::from(peer.0) << 48) | entry.seq);
            ops.tracer().emit(ops.now(), || TraceEvent::PostBound {
                view,
                seq,
                qpn: u64::from(qpn.masked()),
                wr_id: wr_id.0,
            });
            ops.post_write(
                qpn,
                wr_id,
                advert.va + at as u64,
                advert.rkey,
                bytes.clone(),
            );
            posted += 1;
        }
        self.pending.insert(
            entry.seq,
            PendingDecision {
                acks: 0,
                posted,
                decided: false,
                arrived,
                size,
                at,
                len: bytes.len(),
            },
        );
    }

    /// Re-replicates undecided entries to a freshly connected link and
    /// tops a closed-loop workload back up after an outage.
    fn recover_pipeline(&mut self, peer: MemberId, ops: &mut HostOps<'_, '_>) {
        if let Some(link) = self.repl_links.get(&peer) {
            if let (Some(qpn), Some(advert)) = (link.qpn, link.advert) {
                let region = self.log_region.expect("registered");
                let undecided: Vec<(u64, usize, usize)> = self
                    .pending
                    .iter()
                    .filter(|(_, p)| !p.decided)
                    .map(|(&seq, p)| (seq, p.at, p.len))
                    .collect();
                for (seq, at, len) in undecided {
                    let data = Bytes::copy_from_slice(ops.read_local(region, at, len));
                    ops.post_write(
                        qpn,
                        WrId(WR_REPL | (u64::from(peer.0) << 48) | seq),
                        advert.va + at as u64,
                        advert.rkey,
                        data,
                    );
                    if let Some(p) = self.pending.get_mut(&seq) {
                        p.posted += 1;
                    }
                }
            }
        }
        let Some(spec) = self.cfg.workload else {
            return;
        };
        let WorkloadMode::Closed { inflight } = spec.mode else {
            return;
        };
        if !self.workload_started || !self.operational {
            return;
        }
        let outstanding = self.pending.values().filter(|p| !p.decided).count();
        let mut deficit = inflight.saturating_sub(outstanding);
        while deficit > 0 && !self.workload_done(&spec) {
            let now = ops.now();
            self.propose(now, ops);
            deficit -= 1;
        }
    }

    fn on_repl_completion(
        &mut self,
        peer: MemberId,
        seq: u64,
        c: &Completion,
        ops: &mut HostOps<'_, '_>,
    ) {
        if !c.status.is_success() {
            // The replica (or the path to it) failed: exclude it.
            if let Some(link) = self.repl_links.get_mut(&peer) {
                if link.state == LinkState::Ready {
                    link.state = LinkState::Dead;
                    if let Some(qpn) = link.qpn.take() {
                        ops.destroy_qp(qpn);
                    }
                    self.stats
                        .event(ops.now(), MemberEvent::ReplicaExcluded { id: peer });
                }
            }
            if let Some(p) = self.pending.get_mut(&seq) {
                p.posted = p.posted.saturating_sub(1);
            }
            if self.ready_links() < self.cfg.cluster.f() {
                self.operational = false;
            }
            return;
        }
        let f = self.cfg.cluster.f() as u32;
        self.stats.min_credit_seen = self.stats.min_credit_seen.min(c.credits);
        let now = ops.now();
        let Some(p) = self.pending.get_mut(&seq) else {
            return;
        };
        p.acks += 1;
        let mut decided_now = false;
        if !p.decided && p.acks >= f {
            p.decided = true;
            decided_now = true;
        }
        let cleanup = p.acks >= p.posted;
        let (arrived, size) = (p.arrived, p.size);
        if cleanup {
            self.pending.remove(&seq);
        }
        if decided_now {
            self.record_decision(seq, arrived, size, now, ops);
        }
    }

    fn record_decision(
        &mut self,
        seq: u64,
        arrived: SimTime,
        size: usize,
        now: SimTime,
        ops: &mut HostOps<'_, '_>,
    ) {
        self.stats.decided += 1;
        let view = self.views.view();
        ops.tracer().emit(now, || TraceEvent::Decide { view, seq });
        if self.first_decision_pending {
            self.first_decision_pending = false;
            self.stats.event(
                now,
                MemberEvent::FirstDecision {
                    view: self.views.view(),
                    seq,
                },
            );
        }
        if let Some(spec) = self.cfg.workload {
            if self.stats.decided == spec.warmup_requests {
                self.stats.throughput.reset(now);
                self.stats.latency.clear();
            } else if self.stats.decided > spec.warmup_requests {
                self.stats
                    .latency
                    .record(now.saturating_duration_since(arrived));
                self.stats.throughput.record(size as u64);
            }
            // Closed loop: a decision frees a slot.
            if matches!(spec.mode, WorkloadMode::Closed { .. })
                && !self.workload_done(&spec)
                && self.operational
            {
                self.propose(now, ops);
            }
        }
    }

    // ------------------------------------------------------------------
    // Connection management
    // ------------------------------------------------------------------

    fn on_connect_request(
        &mut self,
        handshake_id: u64,
        from_ip: Ipv4Addr,
        from_qpn: Qpn,
        start_psn: Psn,
        private_data: &[u8],
        ops: &mut HostOps<'_, '_>,
    ) {
        match private_data.first() {
            Some(&KIND_HEARTBEAT) => {
                let region = self.hb_region.expect("registered at start");
                let info = ops.region_info(region);
                let advert = RegionAdvert {
                    va: info.va,
                    rkey: info.rkey,
                    len: info.len,
                };
                ops.accept(handshake_id, from_ip, from_qpn, start_psn, advert.encode());
            }
            Some(&KIND_REPLICATION) => {
                // Only the member we believe leads may write our log
                // (§III). The grant itself takes the permission-change
                // delay to apply; the reply signals readiness.
                let believed = self.views.leader().map(|id| self.cfg.cluster.addr_of(id));
                if believed != Some(from_ip) {
                    ops.reject(handshake_id, from_ip, RejectReason::NotAuthorized);
                    return;
                }
                let key = self.next_defer;
                self.next_defer += 1;
                self.deferred.insert(
                    key,
                    DeferredAccept {
                        handshake_id,
                        from_ip,
                        from_qpn,
                        start_psn,
                    },
                );
                // The permission change only costs 0.9 ms when the grant
                // actually changes; the incumbent leader re-connecting
                // (e.g. a fresh communication group) pays nothing.
                let delay = if self.granted_leader == Some(from_ip) {
                    SimDuration::ZERO
                } else {
                    self.cfg.cluster.permission_change_delay
                };
                ops.set_app_timer(delay, T_DEFER_ACCEPT | key);
            }
            _ => ops.reject(handshake_id, from_ip, RejectReason::NotListening),
        }
    }

    fn finish_deferred_accept(&mut self, key: u64, ops: &mut HostOps<'_, '_>) {
        let Some(d) = self.deferred.remove(&key) else {
            return;
        };
        // The leader may have changed while the grant was applying.
        let believed = self.views.leader().map(|id| self.cfg.cluster.addr_of(id));
        if believed != Some(d.from_ip) {
            ops.reject(d.handshake_id, d.from_ip, RejectReason::NotAuthorized);
            return;
        }
        let region = self.log_region.expect("registered at start");
        let new_epoch = self.granted_leader != Some(d.from_ip);
        if new_epoch {
            if let Some(old) = self.granted_leader.take() {
                ops.revoke(region, old);
            }
            ops.grant(region, d.from_ip, Permissions::WRITE);
            self.granted_leader = Some(d.from_ip);
        }
        let info = ops.region_info(region);
        let advert = RegionAdvert {
            va: info.va,
            rkey: info.rkey,
            len: info.len,
        };
        let qpn = ops.accept(
            d.handshake_id,
            d.from_ip,
            d.from_qpn,
            d.start_psn,
            advert.encode(),
        );
        if new_epoch {
            // Fence: only this epoch's queue pairs may write the log, so
            // a deposed leader's stale connection NAKs. A new leader also
            // means a new epoch of the log.
            self.view_writer_qpns.clear();
            self.reader.reset();
            ops.write_local(region, 0, &[0u8; 16]);
        }
        self.view_writer_qpns.insert(qpn.masked());
        ops.set_allowed_writer_qpns(region, Some(self.view_writer_qpns.clone()));
    }

    fn on_connected(
        &mut self,
        handshake_id: u64,
        qpn: Qpn,
        private_data: &[u8],
        ops: &mut HostOps<'_, '_>,
    ) {
        let Some((kind, peer)) = self.handshake_peer.remove(&handshake_id) else {
            return;
        };
        let advert = RegionAdvert::decode(private_data).ok();
        match kind {
            KIND_HEARTBEAT => {
                if let Some(link) = self.hb_links.get_mut(&peer) {
                    link.state = LinkState::Ready;
                    link.qpn = Some(qpn);
                    link.advert = advert;
                    link.reconnect_backoff = 0;
                }
            }
            KIND_REPLICATION => {
                if let Some(link) = self.repl_links.get_mut(&peer) {
                    link.state = LinkState::Ready;
                    link.qpn = Some(qpn);
                    link.advert = advert;
                }
                // Catch the replica up on everything already appended so
                // its log has no gap (simplified Mu state transfer).
                let prefix = self.writer.offset();
                if prefix > 0 {
                    if let Some(advert) = advert {
                        // Chunked state transfer: bounded-size writes keep
                        // each request comfortably inside the transport's
                        // retransmission timeout.
                        const CHUNK: usize = 64 << 10;
                        let region = self.log_region.expect("registered");
                        let mut off = 0usize;
                        while off < prefix {
                            let end = (off + CHUNK).min(prefix);
                            let data =
                                Bytes::copy_from_slice(ops.read_local(region, off, end - off));
                            ops.post_write(
                                qpn,
                                WrId(WR_CATCHUP | u64::from(peer.0)),
                                advert.va + off as u64,
                                advert.rkey,
                                data,
                            );
                            off = end;
                        }
                    }
                }
                self.maybe_operational(ops);
                self.recover_pipeline(peer, ops);
            }
            _ => {}
        }
    }

    fn on_rejected(&mut self, handshake_id: u64, ops: &mut HostOps<'_, '_>) {
        let Some((kind, peer)) = self.handshake_peer.remove(&handshake_id) else {
            return;
        };
        match kind {
            KIND_HEARTBEAT => {
                if let Some(link) = self.hb_links.get_mut(&peer) {
                    link.state = LinkState::Dead;
                }
            }
            KIND_REPLICATION
                // The replica has not adopted us yet: retry shortly.
                if self.i_am_leader => {
                    ops.set_app_timer(
                        self.cfg.cluster.timing.replica_reconnect_delay,
                        T_RECONNECT | u64::from(peer.0),
                    );
                }
            _ => {}
        }
    }

    fn retry_repl_connect(&mut self, peer: MemberId, ops: &mut HostOps<'_, '_>) {
        if !self.i_am_leader || !self.detector.is_alive(peer) {
            return;
        }
        let ip = self.cfg.cluster.addr_of(peer);
        let hs = ops.connect(ip, Bytes::from_static(&[KIND_REPLICATION]));
        self.handshake_peer.insert(hs, (KIND_REPLICATION, peer));
        self.repl_links.insert(
            peer,
            ReplLink {
                state: LinkState::Connecting,
                qpn: None,
                advert: None,
                retry_backoff: 0,
            },
        );
    }
}

impl RdmaApp for MuMember {
    fn on_start(&mut self, ops: &mut HostOps<'_, '_>) {
        // The log: writable only by the (future) leader.
        let log = ops.register_region(self.cfg.cluster.log_size, Permissions::NONE);
        ops.watch_region(log);
        self.log_region = Some(log);
        // The heartbeat counter: readable by everyone.
        let hb = ops.register_region(8, Permissions::READ);
        self.hb_region = Some(hb);
        // Landing pad for our reads of peers' counters.
        let scratch = ops.register_region(8 * self.cfg.cluster.n(), Permissions::NONE);
        self.hb_scratch = Some(scratch);
        let _ = self.my_index();
        // Kick the heartbeat loop; the first tick also opens hb links.
        ops.set_app_timer(self.cfg.cluster.heartbeat_period, T_HEARTBEAT);
    }

    fn on_completion(&mut self, c: Completion, ops: &mut HostOps<'_, '_>) {
        let class = c.wr_id.0 & WR_CLASS_MASK;
        match class {
            WR_HB => {
                let peer = MemberId((c.wr_id.0 & 0xff) as u8);
                if c.status.is_success() {
                    let slot = self.peer_index(peer) * 8;
                    let raw = ops.read_local(self.hb_scratch.expect("registered"), slot, 8);
                    let value = u64::from_be_bytes(raw.try_into().expect("8 bytes"));
                    if let Some(link) = self.hb_links.get_mut(&peer) {
                        link.last_seen = value;
                    }
                } else if let Some(link) = self.hb_links.get_mut(&peer) {
                    if c.status != CompletionStatus::Flushed {
                        if let Some(qpn) = link.qpn.take() {
                            ops.destroy_qp(qpn);
                        }
                    } else {
                        link.qpn = None;
                    }
                    link.state = LinkState::Dead;
                }
            }
            WR_REPL => {
                let peer = MemberId(((c.wr_id.0 >> 48) & 0xff) as u8);
                let seq = c.wr_id.0 & 0xffff_ffff_ffff;
                self.on_repl_completion(peer, seq, &c, ops);
            }
            WR_CATCHUP => {} // state transfer; not part of any decision
            _ => {}
        }
    }

    fn on_cm_event(&mut self, ev: CmEvent, ops: &mut HostOps<'_, '_>) {
        match ev {
            CmEvent::ConnectRequestReceived {
                handshake_id,
                from_ip,
                from_qpn,
                start_psn,
                private_data,
            } => self.on_connect_request(
                handshake_id,
                from_ip,
                from_qpn,
                start_psn,
                &private_data,
                ops,
            ),
            CmEvent::Connected {
                handshake_id,
                qpn,
                private_data,
                ..
            } => self.on_connected(handshake_id, qpn, &private_data, ops),
            CmEvent::Rejected { handshake_id, .. } => self.on_rejected(handshake_id, ops),
            CmEvent::Established { .. } => {}
        }
    }

    fn on_remote_write(
        &mut self,
        region: RegionHandle,
        offset: u64,
        payload: &Bytes,
        ops: &mut HostOps<'_, '_>,
    ) {
        if Some(region) != self.log_region {
            return;
        }
        // Consume complete entries (torn tails wait for their canary).
        // Zero-copy fast path over the delivered payload first; the
        // region sweep serves whatever the payload path could not and is
        // a no-op in steady state.
        let log_size = self.cfg.cluster.log_size;
        let entries = {
            let mut entries = self
                .reader
                .drain_payload(payload, offset as usize)
                .unwrap_or_default();
            let log = ops.read_local(region, 0, log_size);
            entries.extend(self.reader.drain(log).unwrap_or_default());
            entries
        };
        for entry in &entries {
            // Epoch rebuilds replay the log from the head; skip what
            // this member already applied so application is exactly-once.
            if entry.seq < self.next_apply_seq {
                continue;
            }
            self.next_apply_seq = entry.seq + 1;
            self.stats.applied += 1;
            let seq = entry.seq;
            ops.tracer().emit(ops.now(), || TraceEvent::Apply { seq });
            if let Some(sm) = &mut self.state_machine {
                sm.apply(entry);
            }
        }
    }

    fn on_timer(&mut self, token: u64, ops: &mut HostOps<'_, '_>) {
        let class = token & T_CLASS_MASK;
        let data = token & T_DATA_MASK;
        match class {
            T_HEARTBEAT => self.heartbeat_tick(ops),
            T_ARRIVAL => self.arrival_tick(ops),
            T_DEFER_ACCEPT => self.finish_deferred_accept(data, ops),
            T_RECONNECT => self.retry_repl_connect(MemberId((data & 0xff) as u8), ops),
            T_PATH_RECOVER => {
                // Routes have re-converged on the backup fabric: resume
                // heartbeats (links reconnect lazily from the tick).
                for link in self.hb_links.values_mut() {
                    link.state = LinkState::Idle;
                }
                self.heartbeat_tick(ops);
            }
            _ => {}
        }
    }
}
