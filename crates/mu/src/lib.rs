//! # mu — the Mu baseline: microsecond consensus over RDMA
//!
//! A faithful model of Mu (Aguilera et al., OSDI '20), the protocol P4CE
//! adopts its decision layer from and evaluates against (§III, §V). The
//! leader replicates values by writing each replica's log directly with
//! one-sided RDMA writes — one write *per replica* per consensus — and
//! aggregates the acknowledgements on its own CPU. Liveness is
//! heartbeat-based; a single writer is enforced with RDMA permissions.
//!
//! The interesting property for the paper's evaluation: Mu's leader
//! divides its network link and its CPU across `n` replicas, which is
//! exactly the bottleneck P4CE removes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod member;
mod stats;

pub use builder::{ClusterBuilder, Deployment};
pub use member::{MuMember, MuMemberConfig};
pub use stats::{MemberEvent, MemberStats};
