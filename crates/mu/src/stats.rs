//! Measurement state shared by the Mu and P4CE replication engines.

use netsim::{LatencyRecorder, MetricsRegistry, SimDuration, SimTime, Throughput};
use replication::MemberId;

/// Cluster-visible happenings, timestamped for the fail-over experiments
/// (Table IV).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberEvent {
    /// The member observed a leadership change.
    ViewChange {
        /// New view number.
        view: u64,
        /// New leader, if any member is alive.
        leader: Option<MemberId>,
    },
    /// This member became leader.
    BecameLeader {
        /// The view it leads.
        view: u64,
    },
    /// The leader reached a replication quorum and can decide values.
    LeaderOperational {
        /// The view it leads.
        view: u64,
    },
    /// The leader excluded a crashed replica from replication.
    ReplicaExcluded {
        /// The excluded member.
        id: MemberId,
    },
    /// The member switched to its backup network path.
    PathFailover,
    /// The first value decided in a view (fail-over end marker).
    FirstDecision {
        /// The view in which it was decided.
        view: u64,
        /// Its consensus sequence number.
        seq: u64,
    },
    /// The communication group (re-)established through the switch
    /// (P4CE only).
    GroupEstablished,
    /// The member fell back to direct, un-accelerated replication
    /// (P4CE only, §III-A).
    FellBack,
    /// A harness-initiated communication rebuild began (Table IV, "new
    /// communication group").
    CommRebuildStarted,
}

/// Per-member measurement state.
#[derive(Debug)]
pub struct MemberStats {
    /// Consensus operations decided (leader side).
    pub decided: u64,
    /// Requests issued to the replication engine.
    pub issued: u64,
    /// Latency samples (excludes the warm-up prefix). Exact mode by
    /// default; long-running sweeps switch it to bounded histogram mode
    /// with [`LatencyRecorder::use_histogram`].
    pub latency: LatencyRecorder,
    /// Decided-operations throughput window (excludes warm-up).
    pub throughput: Throughput,
    /// Entries applied from the log (replica side).
    pub applied: u64,
    /// The lowest flow-control credit count observed on successful
    /// acknowledgements (leader side; 31 = never constrained).
    pub min_credit_seen: u8,
    /// Timestamped cluster events.
    pub events: Vec<(SimTime, MemberEvent)>,
}

impl Default for MemberStats {
    fn default() -> Self {
        MemberStats {
            decided: 0,
            issued: 0,
            latency: LatencyRecorder::default(),
            throughput: Throughput::default(),
            applied: 0,
            min_credit_seen: 31,
            events: Vec::new(),
        }
    }
}

impl MemberStats {
    /// Records an event at `now`.
    pub fn event(&mut self, now: SimTime, ev: MemberEvent) {
        self.events.push((now, ev));
    }

    /// The instant of the first event matching `pred`, if any.
    pub fn event_time(&self, pred: impl Fn(&MemberEvent) -> bool) -> Option<SimTime> {
        self.events.iter().find(|(_, e)| pred(e)).map(|&(t, _)| t)
    }

    /// The instant of the first event matching `pred` at or after
    /// `after`, if any.
    pub fn event_time_after(
        &self,
        after: SimTime,
        pred: impl Fn(&MemberEvent) -> bool,
    ) -> Option<SimTime> {
        self.events
            .iter()
            .find(|&&(t, ref e)| t >= after && pred(e))
            .map(|&(t, _)| t)
    }

    /// Mean decided latency.
    pub fn mean_latency(&self) -> SimDuration {
        self.latency.mean()
    }

    /// Snapshots the counters into `reg` under `prefix` (e.g.
    /// `member.0`): `"{prefix}.decided"`, `.issued`, `.applied`,
    /// `.min_credit`, `.view_changes`, plus the latency distribution as
    /// a histogram at `"{prefix}.latency"`.
    pub fn register_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.set_counter(&format!("{prefix}.decided"), self.decided);
        reg.set_counter(&format!("{prefix}.issued"), self.issued);
        reg.set_counter(&format!("{prefix}.applied"), self.applied);
        reg.set_gauge(
            &format!("{prefix}.min_credit"),
            f64::from(self.min_credit_seen),
        );
        let view_changes = self
            .events
            .iter()
            .filter(|(_, e)| matches!(e, MemberEvent::ViewChange { .. }))
            .count() as u64;
        reg.set_counter(&format!("{prefix}.view_changes"), view_changes);
        let h = reg.histogram_mut(&format!("{prefix}.latency"));
        match &self.latency {
            LatencyRecorder::Histogram(hist) => h.merge(hist),
            LatencyRecorder::Exact(_) => {
                let mut copy = self.latency.clone();
                copy.use_histogram();
                if let LatencyRecorder::Histogram(hist) = &copy {
                    h.merge(hist);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_lookup() {
        let mut s = MemberStats::default();
        s.event(
            SimTime::from_micros(5),
            MemberEvent::BecameLeader { view: 1 },
        );
        s.event(
            SimTime::from_micros(9),
            MemberEvent::FirstDecision { view: 1, seq: 0 },
        );
        let t = s
            .event_time(|e| matches!(e, MemberEvent::FirstDecision { view: 1, .. }))
            .expect("recorded");
        assert_eq!(t, SimTime::from_micros(9));
        assert!(s
            .event_time(|e| matches!(e, MemberEvent::PathFailover))
            .is_none());
    }

    #[test]
    fn registry_snapshot_carries_counters_and_latency() {
        let mut s = MemberStats {
            decided: 12,
            issued: 15,
            applied: 3,
            min_credit_seen: 9,
            ..Default::default()
        };
        s.event(
            SimTime::from_micros(1),
            MemberEvent::ViewChange {
                view: 1,
                leader: Some(MemberId(0)),
            },
        );
        s.latency.record(SimDuration::from_micros(4));
        let mut reg = MetricsRegistry::new();
        s.register_into(&mut reg, "member.0");
        assert_eq!(reg.counter("member.0.decided"), Some(12));
        assert_eq!(reg.counter("member.0.issued"), Some(15));
        assert_eq!(reg.counter("member.0.applied"), Some(3));
        assert_eq!(reg.counter("member.0.view_changes"), Some(1));
        assert_eq!(reg.gauge("member.0.min_credit"), Some(9.0));
        let h = reg.histogram("member.0.latency").expect("registered");
        assert_eq!(h.len(), 1);
        assert_eq!(h.mean(), SimDuration::from_micros(4));
    }
}
